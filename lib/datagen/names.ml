let first_names =
  [|
    "Marcus"; "Jamal"; "Troy"; "Devin"; "Austin"; "Jordan"; "Tyler";
    "Brandon"; "Caleb"; "Derek"; "Elliott"; "Felix"; "Gavin"; "Hector";
    "Isaiah"; "Julian"; "Kendall"; "Lamar"; "Malik"; "Nolan"; "Omar";
    "Preston"; "Quentin"; "Rashad"; "Silas"; "Terrell"; "Ulysses";
    "Vernon"; "Wesley"; "Xavier"; "Yusuf"; "Zane";
  |]

let last_names =
  [|
    "Bell"; "Carter"; "Dawson"; "Ellison"; "Fletcher"; "Graves"; "Hayes";
    "Irving"; "Jenkins"; "Keller"; "Lawson"; "Mercer"; "Norwood"; "Osborne";
    "Porter"; "Quinn"; "Ramsey"; "Sutton"; "Thornton"; "Underwood";
    "Vaughn"; "Walker"; "Xiong"; "Yates"; "Zeller"; "Abbott"; "Barrett";
    "Calloway"; "Drummond"; "Easton"; "Franklin"; "Gibbs";
  |]

let person rng i =
  Printf.sprintf "P%d_%s_%s" i
    (Prelude.Prng.pick rng first_names)
    (Prelude.Prng.pick rng last_names)

let football_teams =
  [|
    "Aurora_Comets"; "Boulder_Bisons"; "Canton_Chargers"; "Dayton_Drakes";
    "Everett_Eagles"; "Fresno_Falcons"; "Galveston_Giants"; "Hartford_Hawks";
    "Irvine_Ironmen"; "Jackson_Jets"; "Keystone_Kings"; "Lansing_Lynx";
    "Memphis_Mustangs"; "Norfolk_Knights"; "Oakdale_Outlaws";
    "Pueblo_Panthers"; "Quincy_Quakes"; "Raleigh_Raptors"; "Salem_Spartans";
    "Tucson_Titans"; "Utica_Union"; "Vernon_Vikings"; "Wichita_Wolves";
    "Xenia_Xpress"; "Yonkers_Yaks"; "Zephyr_Zealots"; "Albany_Arrows";
    "Bristol_Bears"; "Camden_Cougars"; "Denton_Devils"; "Eugene_Elks";
    "Fargo_Flames";
  |]

let football_clubs =
  [|
    "AC_Belmonte"; "Atletico_Verano"; "CF_Radiante"; "Dynamo_Estrella";
    "FC_Aurelia"; "Fortuna_Maren"; "Inter_Collina"; "Juventus_Arda";
    "Lokomotiv_Vesna"; "Olympique_Clair"; "Racing_Sol"; "Real_Montara";
    "Sporting_Lume"; "Torino_Vela"; "United_Brenta"; "Viktoria_Halm";
    "Wanderers_Costa"; "Athletic_Dorada"; "Borussia_Kern"; "Celtic_Mor";
    "Espanyol_Rio"; "Feyenoord_Lage"; "Galatasaray_Eren"; "Hertha_Blau";
    "Independiente_Luz"; "Kaizer_Thabo"; "Lazio_Perla"; "Monaco_Cren";
    "Napoli_Verde"; "Orlando_Cita"; "Palmeiras_Flor"; "Queens_Parkside";
    "Rangers_Loch"; "Santos_Mar"; "Tottenham_Vale"; "Udinese_Bora";
    "Valencia_Crema"; "Werder_Gruen"; "Xerez_Plata"; "Zenit_Neva";
  |]

let universities =
  [|
    "Ashford_University"; "Blackwell_College"; "Crestview_Institute";
    "Dunmore_University"; "Eastgate_College"; "Fairburn_University";
    "Glenhaven_Institute"; "Holloway_College"; "Ivybrook_University";
    "Juniper_Technical_Institute"; "Kingsford_University";
    "Larkspur_College"; "Montrose_University"; "Northfield_Institute";
    "Oakhurst_College"; "Pinecrest_University";
  |]

let organisations =
  [|
    "Amber_Foundation"; "Beacon_Society"; "Cobalt_Guild"; "Delta_Union";
    "Ember_Collective"; "Fulcrum_Institute"; "Granite_Association";
    "Horizon_League"; "Indigo_Circle"; "Jade_Council"; "Krypton_Board";
    "Lumen_Trust"; "Meridian_Club"; "Nimbus_Network"; "Onyx_Order";
    "Prism_Alliance"; "Quartz_Committee"; "Ridge_Assembly";
    "Sable_Fellowship"; "Topaz_Forum";
  |]

let occupations =
  [|
    "Actor"; "Architect"; "Athlete"; "Chemist"; "Composer"; "Diplomat";
    "Economist"; "Engineer"; "Historian"; "Journalist"; "Jurist";
    "Linguist"; "Mathematician"; "Musician"; "Novelist"; "Painter";
    "Philosopher"; "Physician"; "Physicist"; "Politician"; "Sculptor";
    "Singer"; "Sociologist"; "Teacher";
  |]

let cities =
  [|
    "Arelton"; "Brinmore"; "Calverford"; "Dresmont"; "Elwick"; "Farrowgate";
    "Grenholm"; "Hartsville"; "Islefield"; "Jorvale"; "Kelsmere";
    "Lynden_Falls"; "Marwick"; "Nethercliff"; "Ortana"; "Pellbrook";
    "Quarrytown"; "Rivenhall"; "Selmora"; "Thornbury"; "Umberline";
    "Vancross"; "Westhollow"; "Yarrowfen";
  |]
