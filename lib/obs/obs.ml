(* Span-based tracing and metrics. One implicit stack of open frames;
   closing a frame folds it into its parent as a completed node. All
   entry points are single-flag no-ops while disabled, so the pipeline
   keeps its instrumentation in release builds. *)

module Histogram = struct
  type t = { mutable data : float array; mutable len : int }

  let create () = { data = Array.make 16 0.0; len = 0 }

  let add h x =
    if h.len = Array.length h.data then begin
      let bigger = Array.make (2 * Array.length h.data) 0.0 in
      Array.blit h.data 0 bigger 0 h.len;
      h.data <- bigger
    end;
    h.data.(h.len) <- x;
    h.len <- h.len + 1

  let count h = h.len

  let total h =
    let acc = ref 0.0 in
    for i = 0 to h.len - 1 do
      acc := !acc +. h.data.(i)
    done;
    !acc

  let mean h = if h.len = 0 then Float.nan else total h /. float_of_int h.len

  let fold_extreme better h =
    if h.len = 0 then Float.nan
    else begin
      let acc = ref h.data.(0) in
      for i = 1 to h.len - 1 do
        if better h.data.(i) !acc then acc := h.data.(i)
      done;
      !acc
    end

  let minimum h = fold_extreme ( < ) h
  let maximum h = fold_extreme ( > ) h

  let quantile h q =
    if h.len = 0 then Float.nan
    else begin
      let sorted = Array.sub h.data 0 h.len in
      Array.sort Float.compare sorted;
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank = int_of_float (Float.ceil (q *. float_of_int h.len)) in
      sorted.(max 0 (min (h.len - 1) (rank - 1)))
    end

  let merge a b =
    let h = { data = Array.make (max 16 (a.len + b.len)) 0.0; len = 0 } in
    Array.blit a.data 0 h.data 0 a.len;
    Array.blit b.data 0 h.data a.len b.len;
    h.len <- a.len + b.len;
    h

  let to_list h = Array.to_list (Array.sub h.data 0 h.len)
end

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let add_escaped buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let number f =
    if not (Float.is_finite f) then "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.12g" f

  let rec add_value buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number f)
    | Str s -> add_escaped buf s
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            add_value buf v)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            add_escaped buf k;
            Buffer.add_char buf ':';
            add_value buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    add_value buf t;
    Buffer.contents buf

  exception Bad of int * string

  let parse text =
    let n = String.length text in
    let pos = ref 0 in
    let fail msg = raise (Bad (!pos, msg)) in
    let peek () = if !pos < n then Some text.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      let m = String.length word in
      if !pos + m <= n && String.sub text !pos m = word then begin
        pos := !pos + m;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let add_utf8 buf code =
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
      end
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then fail "unterminated string";
        let c = text.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape");
          let e = text.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub text !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code -> add_utf8 buf code
              | None -> fail "bad \\u escape")
          | _ -> fail "unknown escape");
          loop ()
        end
        else begin
          Buffer.add_char buf c;
          loop ()
        end
      in
      loop ()
    in
    let parse_number () =
      let start = !pos in
      let numeric c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && numeric text.[!pos] do
        advance ()
      done;
      match float_of_string_opt (String.sub text start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Arr (items [])
          end
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (fields [])
          end
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad (at, msg) ->
        Error (Printf.sprintf "json error at offset %d: %s" at msg)

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Collection state.                                                   *)

type metrics = {
  m_counters : (string, float ref) Hashtbl.t;
  m_gauges : (string, float ref) Hashtbl.t;
  m_hists : (string, Histogram.t) Hashtbl.t;
}

let fresh_metrics () =
  {
    m_counters = Hashtbl.create 8;
    m_gauges = Hashtbl.create 4;
    m_hists = Hashtbl.create 4;
  }

type node = {
  name : string;
  calls : int;
  total_ms : float;
  counters : (string * float) list;
  gauges : (string * float) list;
  hists : (string * Histogram.t) list;
  children : node list;
}

type frame = {
  fname : string;
  start_ms : float;
  fmetrics : metrics;
  mutable fchildren : node list; (* reversed *)
}

let fresh_frame name =
  {
    fname = name;
    start_ms = Prelude.Timing.now_ms ();
    fmetrics = fresh_metrics ();
    fchildren = [];
  }

let is_enabled = ref false

let trace_hook : (depth:int -> string -> float -> unit) option ref = ref None

(* The bottom of the stack is the permanent root frame. *)
let stack = ref [ fresh_frame "root" ]

(* Solver tasks running on a Prelude.Pool emit counters from worker
   domains while the coordinator blocks in the join, so every mutation
   of the stack and of the per-frame registries is serialised here. The
   disabled path stays a single unsynchronised flag test. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let enabled () = !is_enabled
let set_enabled b = locked (fun () -> is_enabled := b)
let set_trace h = locked (fun () -> trace_hook := h)
let reset () = locked (fun () -> stack := [ fresh_frame "root" ])

let current () =
  match !stack with frame :: _ -> frame | [] -> assert false

let sorted_assoc tbl extract =
  Hashtbl.fold (fun k v acc -> (k, extract v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let metrics_counters m = sorted_assoc m.m_counters (fun r -> !r)
let metrics_gauges m = sorted_assoc m.m_gauges (fun r -> !r)
let metrics_hists m = sorted_assoc m.m_hists (fun h -> h)

let node_of_frame fr elapsed =
  {
    name = fr.fname;
    calls = 1;
    total_ms = elapsed;
    counters = metrics_counters fr.fmetrics;
    gauges = metrics_gauges fr.fmetrics;
    hists = metrics_hists fr.fmetrics;
    children = List.rev fr.fchildren;
  }

let span name f =
  if not !is_enabled then f ()
  else begin
    let fr = fresh_frame name in
    locked (fun () -> stack := fr :: !stack);
    let close () =
      let elapsed = Prelude.Timing.now_ms () -. fr.start_ms in
      locked (fun () ->
          match !stack with
          | top :: parent :: rest when top == fr ->
              stack := parent :: rest;
              parent.fchildren <- node_of_frame fr elapsed :: parent.fchildren;
              (match !trace_hook with
              | Some hook when !is_enabled ->
                  hook ~depth:(List.length rest) name elapsed
              | _ -> ())
          | _ ->
              (* A reset happened under us (or collection was toggled while
                 the span was open): the frame is an orphan; drop it. *)
              ())
    in
    Fun.protect ~finally:close f
  end

let add name v =
  if !is_enabled then
    locked (fun () ->
        let m = (current ()).fmetrics in
        match Hashtbl.find_opt m.m_counters name with
        | Some r -> r := !r +. v
        | None -> Hashtbl.add m.m_counters name (ref v))

let count ?(n = 1) name = add name (float_of_int n)

let gauge name v =
  if !is_enabled then
    locked (fun () ->
        let m = (current ()).fmetrics in
        match Hashtbl.find_opt m.m_gauges name with
        | Some r -> r := v
        | None -> Hashtbl.add m.m_gauges name (ref v))

let record name v =
  if !is_enabled then
    locked (fun () ->
        let m = (current ()).fmetrics in
        match Hashtbl.find_opt m.m_hists name with
        | Some h -> Histogram.add h v
        | None ->
            let h = Histogram.create () in
            Histogram.add h v;
            Hashtbl.add m.m_hists name h)

(* ------------------------------------------------------------------ *)
(* Reports.                                                            *)

module Report = struct
  type nonrec node = node = {
    name : string;
    calls : int;
    total_ms : float;
    counters : (string * float) list;
    gauges : (string * float) list;
    hists : (string * Histogram.t) list;
    children : node list;
  }

  type t = {
    wall_ms : float;
    counters : (string * float) list;
    gauges : (string * float) list;
    hists : (string * Histogram.t) list;
    spans : node list;
  }

  (* Union of sorted assoc lists. *)
  let merge_assoc combine xs ys =
    let rec go xs ys =
      match (xs, ys) with
      | [], rest | rest, [] -> rest
      | (kx, vx) :: xs', (ky, vy) :: ys' ->
          let c = String.compare kx ky in
          if c < 0 then (kx, vx) :: go xs' ys
          else if c > 0 then (ky, vy) :: go xs ys'
          else (kx, combine vx vy) :: go xs' ys'
    in
    go xs ys

  let combine_nodes a b =
    {
      name = a.name;
      calls = a.calls + b.calls;
      total_ms = a.total_ms +. b.total_ms;
      counters = merge_assoc ( +. ) a.counters b.counters;
      gauges = merge_assoc (fun _ later -> later) a.gauges b.gauges;
      hists = merge_assoc Histogram.merge a.hists b.hists;
      children = a.children @ b.children;
    }

  (* Merge same-named siblings, preserving first-appearance order. *)
  let rec merge_siblings nodes =
    let order = ref [] in
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun nd ->
        match Hashtbl.find_opt tbl nd.name with
        | None ->
            Hashtbl.add tbl nd.name nd;
            order := nd.name :: !order
        | Some prev -> Hashtbl.replace tbl nd.name (combine_nodes prev nd))
      nodes;
    List.rev_map
      (fun name ->
        let nd = Hashtbl.find tbl name in
        { nd with children = merge_siblings nd.children })
      !order

  let capture () =
    locked @@ fun () ->
    let root = List.nth !stack (List.length !stack - 1) in
    {
      wall_ms = Prelude.Timing.now_ms () -. root.start_ms;
      counters = metrics_counters root.fmetrics;
      gauges = metrics_gauges root.fmetrics;
      hists = metrics_hists root.fmetrics;
      spans = merge_siblings (List.rev root.fchildren);
    }

  let self_ms nd =
    nd.total_ms
    -. List.fold_left (fun acc c -> acc +. c.total_ms) 0.0 nd.children

  let find t path =
    let rec go nodes = function
      | [] -> None
      | [ name ] -> List.find_opt (fun nd -> nd.name = name) nodes
      | name :: rest -> (
          match List.find_opt (fun nd -> nd.name = name) nodes with
          | Some nd -> go nd.children rest
          | None -> None)
    in
    go t.spans path

  (* -------------------------------------------------------------- *)

  let pp_value ppf v =
    if Float.is_integer v && Float.abs v < 1e15 then
      Format.fprintf ppf "%.0f" v
    else Format.fprintf ppf "%g" v

  let pp_metrics ~indent ppf (counters, gauges, hists) =
    let pad = String.make indent ' ' in
    List.iter
      (fun (k, v) -> Format.fprintf ppf "%s. %s = %a@," pad k pp_value v)
      counters;
    List.iter
      (fun (k, v) -> Format.fprintf ppf "%s. %s ~ %a@," pad k pp_value v)
      gauges;
    List.iter
      (fun (k, h) ->
        Format.fprintf ppf "%s. %s : n=%d mean=%a p50=%a p90=%a max=%a@," pad k
          (Histogram.count h) pp_value (Histogram.mean h) pp_value
          (Histogram.quantile h 0.5) pp_value (Histogram.quantile h 0.9)
          pp_value (Histogram.maximum h))
      hists

  let rec pp_node ~depth ppf nd =
    let indent = 2 * depth in
    let label = String.make indent ' ' ^ nd.name in
    let width = 40 in
    let label =
      if String.length label >= width then label
      else label ^ String.make (width - String.length label) ' '
    in
    Format.fprintf ppf "%s%10.3f ms" label nd.total_ms;
    if nd.calls > 1 then Format.fprintf ppf "  (%d calls)" nd.calls;
    if nd.children <> [] then
      Format.fprintf ppf "  (self %.3f ms)" (self_ms nd);
    Format.fprintf ppf "@,";
    pp_metrics ~indent:(indent + 2) ppf (nd.counters, nd.gauges, nd.hists);
    List.iter (pp_node ~depth:(depth + 1) ppf) nd.children

  let pp ppf t =
    Format.fprintf ppf "@[<v>-- observability report (wall %.3f ms) --@,"
      t.wall_ms;
    List.iter (pp_node ~depth:0 ppf) t.spans;
    pp_metrics ~indent:0 ppf (t.counters, t.gauges, t.hists);
    Format.fprintf ppf "@]"

  (* -------------------------------------------------------------- *)

  let json_metrics (counters, gauges, hists) =
    let assoc kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) kvs) in
    let hist h =
      Json.Obj
        [
          ("count", Json.Num (float_of_int (Histogram.count h)));
          ("total", Json.Num (Histogram.total h));
          ("mean", Json.Num (Histogram.mean h));
          ("min", Json.Num (Histogram.minimum h));
          ("max", Json.Num (Histogram.maximum h));
          ("p50", Json.Num (Histogram.quantile h 0.5));
          ("p90", Json.Num (Histogram.quantile h 0.9));
          ("p99", Json.Num (Histogram.quantile h 0.99));
        ]
    in
    (match counters with [] -> [] | kvs -> [ ("counters", assoc kvs) ])
    @ (match gauges with [] -> [] | kvs -> [ ("gauges", assoc kvs) ])
    @
    match hists with
    | [] -> []
    | kvs ->
        [ ("histograms", Json.Obj (List.map (fun (k, h) -> (k, hist h)) kvs)) ]

  let rec json_node nd =
    Json.Obj
      ([
         ("name", Json.Str nd.name);
         ("calls", Json.Num (float_of_int nd.calls));
         ("total_ms", Json.Num nd.total_ms);
         ("self_ms", Json.Num (self_ms nd));
       ]
      @ json_metrics (nd.counters, nd.gauges, nd.hists)
      @
      match nd.children with
      | [] -> []
      | children -> [ ("spans", Json.Arr (List.map json_node children)) ])

  let to_json t =
    Json.Obj
      ([ ("wall_ms", Json.Num t.wall_ms) ]
      @ json_metrics (t.counters, t.gauges, t.hists)
      @ [ ("spans", Json.Arr (List.map json_node t.spans)) ])

  let to_string t = Json.to_string (to_json t)
end
