(* Span-based tracing and metrics. One implicit stack of open frames
   per domain; closing a frame folds it into its parent as a completed
   node. The domain that last called [reset] owns the main stack; every
   other domain that opens a span gets a lazily-created "workers/<i>"
   lane, merged into the report as a top-level subtree. All entry
   points are single-flag no-ops while disabled, so the pipeline keeps
   its instrumentation in release builds. *)

module Histogram = struct
  (* Exact sample storage below [cap]; past it the stored samples
     degrade to a uniform reservoir (Vitter's algorithm R, driven by a
     per-histogram splitmix64 state so replays are deterministic),
     while [count], [total], [minimum] and [maximum] stay exact for the
     whole stream. Memory is O(cap) however long the process runs —
     the bound a long-lived server's per-phase histograms rely on. *)
  type t = {
    cap : int;
    mutable data : float array;
    mutable len : int;
    mutable seen : int;
    mutable sum : float;
    mutable lo : float;
    mutable hi : float;
    rng : Prelude.Prng.t;
  }

  let default_cap = 4096
  let reservoir_seed = 0x0b5e55ed

  let create ?(cap = default_cap) () =
    let cap = max 1 cap in
    {
      cap;
      data = Array.make (min cap 16) 0.0;
      len = 0;
      seen = 0;
      sum = 0.0;
      lo = Float.nan;
      hi = Float.nan;
      rng = Prelude.Prng.create reservoir_seed;
    }

  let add h x =
    h.seen <- h.seen + 1;
    h.sum <- h.sum +. x;
    if h.seen = 1 then begin
      h.lo <- x;
      h.hi <- x
    end
    else begin
      if x < h.lo then h.lo <- x;
      if x > h.hi then h.hi <- x
    end;
    if h.len < h.cap then begin
      if h.len = Array.length h.data then begin
        let bigger = Array.make (min h.cap (2 * Array.length h.data)) 0.0 in
        Array.blit h.data 0 bigger 0 h.len;
        h.data <- bigger
      end;
      h.data.(h.len) <- x;
      h.len <- h.len + 1
    end
    else begin
      (* Algorithm R: every sample of the stream ends up stored with
         probability cap/seen. *)
      let j = Prelude.Prng.int h.rng h.seen in
      if j < h.cap then h.data.(j) <- x
    end

  let count h = h.seen
  let total h = h.sum
  let mean h = if h.seen = 0 then Float.nan else h.sum /. float_of_int h.seen
  let minimum h = h.lo
  let maximum h = h.hi
  let stored h = h.len
  let capacity h = h.cap

  let quantile h q =
    if h.len = 0 then Float.nan
    else begin
      let sorted = Array.sub h.data 0 h.len in
      Array.sort Float.compare sorted;
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank = int_of_float (Float.ceil (q *. float_of_int h.len)) in
      sorted.(max 0 (min (h.len - 1) (rank - 1)))
    end

  let merge a b =
    (* PRNG-free and never aliasing either input: when both stored
       sample sets fit under the larger cap they are kept whole,
       otherwise the concatenation is decimated at a fixed stride — so
       merging the same pair twice gives identical histograms. *)
    let cap = max a.cap b.cap in
    let n = a.len + b.len in
    let all = Array.make (max 1 n) 0.0 in
    Array.blit a.data 0 all 0 a.len;
    Array.blit b.data 0 all a.len b.len;
    let data, len =
      if n <= cap then (all, n)
      else begin
        let out = Array.make cap 0.0 in
        for i = 0 to cap - 1 do
          out.(i) <- all.(i * n / cap)
        done;
        (out, cap)
      end
    in
    let lo, hi =
      if a.seen = 0 then (b.lo, b.hi)
      else if b.seen = 0 then (a.lo, a.hi)
      else (Float.min a.lo b.lo, Float.max a.hi b.hi)
    in
    {
      cap;
      data;
      len;
      seen = a.seen + b.seen;
      sum = a.sum +. b.sum;
      lo;
      hi;
      rng = Prelude.Prng.create reservoir_seed;
    }

  let to_list h = Array.to_list (Array.sub h.data 0 h.len)
end

(* Per-request phase accumulators for [tecore serve]: a request's trace
   context collects (phase, elapsed-ms) pairs independently of the
   process-wide span tree, so the server can attribute one request's
   time to parse/queue/lock/ground/solve/journal/fsync/reply even while
   global collection is disabled. Contexts are installed per systhread
   (see [with_phases] below) and explicitly handed between threads by
   the owner — the connection thread installs the context, the resolver
   re-installs it around the solve. *)
module Phases = struct
  type ctx = {
    only : string list option;
        (* when set, spans outside this list are not captured *)
    mutable depth : int;
        (* open captured spans; nested ones attribute to the outermost *)
    mutable acc : (string * float) list; (* reversed insertion order *)
  }

  let create ?only () = { only; depth = 0; acc = [] }

  let interested ctx name =
    match ctx.only with
    | None -> true
    | Some names -> List.mem name names

  let record ctx name ms = ctx.acc <- (name, ms) :: ctx.acc

  (* Span-capture bracket: [enter] before running the body, [leave]
     after. Only the outermost captured span records, so a cutting-plane
     re-ground nested inside [solve] is not double-counted. *)
  let enter ctx =
    let outer = ctx.depth in
    ctx.depth <- outer + 1;
    outer

  let leave ctx name ms ~outer =
    ctx.depth <- outer;
    if outer = 0 then record ctx name ms

  let entries ctx = List.rev ctx.acc
  let total ctx = List.fold_left (fun s (_, ms) -> s +. ms) 0.0 ctx.acc
end

module Series = struct
  (* Bounded (x, y) timeline. Downsampling is by decimation, not random
     reservoir: when the buffer fills, every other kept point is
     dropped and the keep-stride doubles, so the retained points are
     always a subsequence of the input — monotone inputs stay monotone.
     The most recent sample is tracked separately so the curve always
     ends at the final value. Memory is O(cap) regardless of length. *)
  type t = {
    cap : int;
    mutable xs : float array;
    mutable ys : float array;
    mutable len : int;
    mutable stride : int; (* keep every stride-th offered sample *)
    mutable pending : int; (* offers since the last kept sample *)
    mutable total : int; (* samples offered overall *)
    mutable last : (float * float) option;
  }

  let default_cap = 512

  let create ?(cap = default_cap) () =
    let cap = max 8 cap in
    {
      cap;
      xs = Array.make cap 0.0;
      ys = Array.make cap 0.0;
      len = 0;
      stride = 1;
      pending = 0;
      total = 0;
      last = None;
    }

  let add s ~x ~y =
    s.total <- s.total + 1;
    s.last <- Some (x, y);
    s.pending <- s.pending + 1;
    if s.pending >= s.stride then begin
      s.pending <- 0;
      if s.len = s.cap then begin
        let j = ref 0 in
        let i = ref 0 in
        while !i < s.len do
          s.xs.(!j) <- s.xs.(!i);
          s.ys.(!j) <- s.ys.(!i);
          incr j;
          i := !i + 2
        done;
        s.len <- !j;
        s.stride <- s.stride * 2
      end;
      s.xs.(s.len) <- x;
      s.ys.(s.len) <- y;
      s.len <- s.len + 1
    end

  let count s = s.total

  let points s =
    let kept = List.init s.len (fun i -> (s.xs.(i), s.ys.(i))) in
    match s.last with
    | Some (x, y)
      when s.len = 0 || s.xs.(s.len - 1) <> x || s.ys.(s.len - 1) <> y ->
        kept @ [ (x, y) ]
    | _ -> kept

  let length s = List.length (points s)

  let merge a b =
    let pts =
      List.stable_sort
        (fun (x1, _) (x2, _) -> Float.compare x1 x2)
        (points a @ points b)
    in
    let s = create ~cap:(max a.cap b.cap) () in
    List.iter (fun (x, y) -> add s ~x ~y) pts;
    s.total <- a.total + b.total;
    s
end

module Events = struct
  type level = Debug | Info | Warn | Error

  type value = Int of int | Float of float | Str of string | Bool of bool

  type event = {
    t_ms : float; (* milliseconds since the last reset *)
    level : level;
    name : string;
    fields : (string * value) list;
  }

  let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

  let level_name = function
    | Debug -> "debug"
    | Info -> "info"
    | Warn -> "warn"
    | Error -> "error"

  let level_of_string = function
    | "debug" -> Some Debug
    | "info" -> Some Info
    | "warn" | "warning" -> Some Warn
    | "error" -> Some Error
    | _ -> None

  let value_to_string = function
    | Int i -> string_of_int i
    | Float f -> Printf.sprintf "%g" f
    | Str s -> s
    | Bool b -> string_of_bool b
end

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let add_escaped buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let number f =
    if not (Float.is_finite f) then "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else begin
      (* Shortest of %.12g/%.15g/%.16g/%.17g that parses back to the
         same float: keeps the previous %.12g output for almost every
         value while making print/parse an exact round trip. *)
      let s = Printf.sprintf "%.12g" f in
      if float_of_string s = f then s
      else
        let s = Printf.sprintf "%.15g" f in
        if float_of_string s = f then s
        else
          let s = Printf.sprintf "%.16g" f in
          if float_of_string s = f then s else Printf.sprintf "%.17g" f
    end

  let rec add_value buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number f)
    | Str s -> add_escaped buf s
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            add_value buf v)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            add_escaped buf k;
            Buffer.add_char buf ':';
            add_value buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    add_value buf t;
    Buffer.contents buf

  exception Bad of int * string

  let parse text =
    let n = String.length text in
    let pos = ref 0 in
    let fail msg = raise (Bad (!pos, msg)) in
    let peek () = if !pos < n then Some text.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      let m = String.length word in
      if !pos + m <= n && String.sub text !pos m = word then begin
        pos := !pos + m;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let add_utf8 buf code =
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
      end
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then fail "unterminated string";
        let c = text.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape");
          let e = text.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub text !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code -> add_utf8 buf code
              | None -> fail "bad \\u escape")
          | _ -> fail "unknown escape");
          loop ()
        end
        else begin
          Buffer.add_char buf c;
          loop ()
        end
      in
      loop ()
    in
    let parse_number () =
      let start = !pos in
      let numeric c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && numeric text.[!pos] do
        advance ()
      done;
      match float_of_string_opt (String.sub text start (!pos - start)) with
      | Some f when Float.is_finite f -> Num f
      | Some _ ->
          (* e.g. "1e999": syntactically a JSON number but not a finite
             float. Report at the number's first byte. *)
          pos := start;
          fail "non-finite number"
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Arr (items [])
          end
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (fields [])
          end
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad (at, msg) ->
        Error (Printf.sprintf "json error at offset %d: %s" at msg)

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Collection state.                                                   *)

type metrics = {
  m_counters : (string, float ref) Hashtbl.t;
  m_gauges : (string, float ref) Hashtbl.t;
  m_hists : (string, Histogram.t) Hashtbl.t;
  m_series : (string, Series.t) Hashtbl.t;
}

let fresh_metrics () =
  {
    m_counters = Hashtbl.create 8;
    m_gauges = Hashtbl.create 4;
    m_hists = Hashtbl.create 4;
    m_series = Hashtbl.create 4;
  }

type node = {
  name : string;
  calls : int;
  total_ms : float;
  counters : (string * float) list;
  gauges : (string * float) list;
  hists : (string * Histogram.t) list;
  series : (string * Series.t) list;
  children : node list;
  slices : (float * float) list;
      (* per call: (start offset from the last reset, duration), ms *)
}

type frame = {
  fname : string;
  start_ms : float;
  fmetrics : metrics;
  mutable fchildren : node list; (* reversed *)
}

let fresh_frame name =
  {
    fname = name;
    start_ms = Prelude.Timing.now_ms ();
    fmetrics = fresh_metrics ();
    fchildren = [];
  }

let is_enabled = ref false

let trace_hook : (depth:int -> string -> float -> unit) option ref = ref None

(* The bottom of the stack is the permanent root frame, owned by the
   domain that last called [reset]. *)
let stack = ref [ fresh_frame "root" ]
let main_domain = ref (Domain.self () :> int)

(* Spans opened by any other domain (crew workers, mostly, via the
   Pool task hook) collect into per-domain lanes instead, reported as
   "workers/<i>" top-level subtrees. Lane indices are assigned in
   first-span order, so which worker gets which index is
   scheduling-dependent — reports are equivalent only modulo that. *)
type worker = {
  w_index : int;
  w_root : frame;
  mutable w_stack : frame list; (* open frames, innermost first *)
}

let workers : (int, worker) Hashtbl.t = Hashtbl.create 8
let next_worker = ref 0

(* Structured event log: a bounded ring so unbounded Debug chatter
   cannot grow the process; overflow drops the oldest events. *)
let default_event_capacity = 4096
let event_ring = ref (Array.make default_event_capacity (None : Events.event option))
let event_head = ref 0 (* next write position *)
let event_stored = ref 0
let event_dropped = ref 0
let event_hook : (Events.event -> unit) option ref = ref None

(* Solver tasks running on a Prelude.Pool emit from worker domains
   while the coordinator blocks in the join, so every mutation of the
   stacks, the event ring and the per-frame registries is serialised
   here. The disabled path stays a single unsynchronised flag test. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* Installed per-request phase contexts, keyed by systhread id: all
   server threads share one domain, so Domain-local storage cannot tell
   a connection thread from the resolver. [phases_installed] is a plain
   load on the hot path — when zero (no tracing anywhere), [span] and
   [phase] cost exactly two flag reads. *)
let phase_ctxs : (int, Phases.ctx) Hashtbl.t = Hashtbl.create 8
let phases_installed = ref 0

let current_phase_ctx () =
  if !phases_installed = 0 then None
  else
    let tid = Thread.id (Thread.self ()) in
    locked (fun () -> Hashtbl.find_opt phase_ctxs tid)

let with_phases ctx f =
  let tid = Thread.id (Thread.self ()) in
  let prev =
    locked (fun () ->
        let prev = Hashtbl.find_opt phase_ctxs tid in
        Hashtbl.replace phase_ctxs tid ctx;
        incr phases_installed;
        prev)
  in
  Fun.protect
    ~finally:(fun () ->
      locked (fun () ->
          (match prev with
          | Some p -> Hashtbl.replace phase_ctxs tid p
          | None -> Hashtbl.remove phase_ctxs tid);
          decr phases_installed))
    f

(* Time [f] into the calling thread's installed phase context, without
   ever touching the global span tree — safe on connection threads even
   while process-wide collection is enabled. No context, no cost. *)
let phase name f =
  match current_phase_ctx () with
  | None -> f ()
  | Some ctx when Phases.interested ctx name ->
      let outer = Phases.enter ctx in
      let t0 = Prelude.Timing.now_ms () in
      Fun.protect f ~finally:(fun () ->
          Phases.leave ctx name (Prelude.Timing.now_ms () -. t0) ~outer)
  | Some _ -> f ()

let enabled () = !is_enabled
let set_enabled b = locked (fun () -> is_enabled := b)
let set_trace h = locked (fun () -> trace_hook := h)
let set_event_hook h = locked (fun () -> event_hook := h)

let reset () =
  locked (fun () ->
      stack := [ fresh_frame "root" ];
      main_domain := (Domain.self () :> int);
      Hashtbl.reset workers;
      next_worker := 0;
      Array.fill !event_ring 0 (Array.length !event_ring) None;
      event_head := 0;
      event_stored := 0;
      event_dropped := 0)

(* Call with the lock held. *)
let root_frame () =
  let rec last = function
    | [ fr ] -> fr
    | _ :: rest -> last rest
    | [] -> assert false
  in
  last !stack

(* Innermost frame for the calling domain; with the lock held. A domain
   that is neither the owner of the main stack nor inside one of its
   own spans attaches to the coordinator's innermost span, preserving
   the pre-lane behaviour for bare metric emissions from workers. *)
let current () =
  let did = (Domain.self () :> int) in
  if did = !main_domain then List.hd !stack
  else
    match Hashtbl.find_opt workers did with
    | Some { w_stack = fr :: _; _ } -> fr
    | _ -> List.hd !stack

let sorted_assoc tbl extract =
  Hashtbl.fold (fun k v acc -> (k, extract v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let metrics_counters m = sorted_assoc m.m_counters (fun r -> !r)
let metrics_gauges m = sorted_assoc m.m_gauges (fun r -> !r)
let metrics_hists m = sorted_assoc m.m_hists (fun h -> h)
let metrics_series m = sorted_assoc m.m_series (fun s -> s)

let node_of_frame ~epoch fr elapsed =
  {
    name = fr.fname;
    calls = 1;
    total_ms = elapsed;
    counters = metrics_counters fr.fmetrics;
    gauges = metrics_gauges fr.fmetrics;
    hists = metrics_hists fr.fmetrics;
    series = metrics_series fr.fmetrics;
    children = List.rev fr.fchildren;
    slices = [ (fr.start_ms -. epoch, elapsed) ];
  }

let span name f =
  if not !is_enabled then
    (* Process-wide collection off: spans still feed an installed
       per-request phase context, and stay a tail call without one. *)
    phase name f
  else begin
    let fr = fresh_frame name in
    let did = (Domain.self () :> int) in
    let pctx =
      match current_phase_ctx () with
      | Some ctx when Phases.interested ctx name ->
          Some (ctx, Phases.enter ctx)
      | _ -> None
    in
    locked (fun () ->
        if did = !main_domain then stack := fr :: !stack
        else begin
          let w =
            match Hashtbl.find_opt workers did with
            | Some w -> w
            | None ->
                let w =
                  {
                    w_index = !next_worker;
                    w_root =
                      fresh_frame (Printf.sprintf "workers/%d" !next_worker);
                    w_stack = [];
                  }
                in
                incr next_worker;
                Hashtbl.add workers did w;
                w
          in
          w.w_stack <- fr :: w.w_stack
        end);
    let close () =
      let elapsed = Prelude.Timing.now_ms () -. fr.start_ms in
      (match pctx with
      | Some (ctx, outer) -> Phases.leave ctx name elapsed ~outer
      | None -> ());
      locked (fun () ->
          let finish parent depth =
            parent.fchildren <-
              node_of_frame ~epoch:(root_frame ()).start_ms fr elapsed
              :: parent.fchildren;
            match !trace_hook with
            | Some hook when !is_enabled -> hook ~depth name elapsed
            | _ -> ()
          in
          if did = !main_domain then
            match !stack with
            | top :: parent :: rest when top == fr ->
                stack := parent :: rest;
                finish parent (List.length rest)
            | _ ->
                (* A reset happened under us (or collection was toggled
                   while the span was open): the frame is an orphan;
                   drop it. *)
                ()
          else
            match Hashtbl.find_opt workers did with
            | Some w -> (
                match w.w_stack with
                | top :: rest when top == fr ->
                    w.w_stack <- rest;
                    let parent =
                      match rest with p :: _ -> p | [] -> w.w_root
                    in
                    finish parent (List.length rest)
                | _ -> ())
            | None -> ())
    in
    Fun.protect ~finally:close f
  end

let add name v =
  if !is_enabled then
    locked (fun () ->
        let m = (current ()).fmetrics in
        match Hashtbl.find_opt m.m_counters name with
        | Some r -> r := !r +. v
        | None -> Hashtbl.add m.m_counters name (ref v))

let count ?(n = 1) name = add name (float_of_int n)

let gauge name v =
  if !is_enabled then
    locked (fun () ->
        let m = (current ()).fmetrics in
        match Hashtbl.find_opt m.m_gauges name with
        | Some r -> r := v
        | None -> Hashtbl.add m.m_gauges name (ref v))

let record name v =
  if !is_enabled then
    locked (fun () ->
        let m = (current ()).fmetrics in
        match Hashtbl.find_opt m.m_hists name with
        | Some h -> Histogram.add h v
        | None ->
            let h = Histogram.create () in
            Histogram.add h v;
            Hashtbl.add m.m_hists name h)

let sample name ~t_ms ~v =
  if !is_enabled then
    locked (fun () ->
        let m = (current ()).fmetrics in
        let x = t_ms -. (root_frame ()).start_ms in
        match Hashtbl.find_opt m.m_series name with
        | Some s -> Series.add s ~x ~y:v
        | None ->
            let s = Series.create () in
            Series.add s ~x ~y:v;
            Hashtbl.add m.m_series name s)

(* Events in ring order, oldest first; with the lock held. *)
let events_locked () =
  let ring = !event_ring in
  let cap = Array.length ring in
  let start = ((!event_head - !event_stored) mod cap + cap) mod cap in
  List.init !event_stored (fun i ->
      match ring.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let event ?(level = Events.Info) name fields =
  if !is_enabled then
    locked (fun () ->
        let t_ms = Prelude.Timing.now_ms () -. (root_frame ()).start_ms in
        let e = { Events.t_ms; level; name; fields } in
        let ring = !event_ring in
        let cap = Array.length ring in
        if !event_stored = cap then incr event_dropped
        else incr event_stored;
        ring.(!event_head) <- Some e;
        event_head := (!event_head + 1) mod cap;
        match !event_hook with Some h -> h e | None -> ())

let set_event_capacity cap =
  let cap = max 1 cap in
  locked (fun () ->
      let old = events_locked () in
      let n = List.length old in
      let discard = max 0 (n - cap) in
      let kept = List.filteri (fun i _ -> i >= discard) old in
      let ring = Array.make cap None in
      List.iteri (fun i e -> ring.(i) <- Some e) kept;
      event_ring := ring;
      event_stored := List.length kept;
      event_head := !event_stored mod cap;
      event_dropped := !event_dropped + discard)

let event_capacity () = locked (fun () -> Array.length !event_ring)
let events_dropped () = locked (fun () -> !event_dropped)

(* ------------------------------------------------------------------ *)
(* Reports.                                                            *)

module Report = struct
  type nonrec node = node = {
    name : string;
    calls : int;
    total_ms : float;
    counters : (string * float) list;
    gauges : (string * float) list;
    hists : (string * Histogram.t) list;
    series : (string * Series.t) list;
    children : node list;
    slices : (float * float) list;
  }

  type t = {
    wall_ms : float;
    counters : (string * float) list;
    gauges : (string * float) list;
    hists : (string * Histogram.t) list;
    series : (string * Series.t) list;
    spans : node list;
    events : Events.event list;
    events_dropped : int;
  }

  (* Union of sorted assoc lists. *)
  let merge_assoc combine xs ys =
    let rec go xs ys =
      match (xs, ys) with
      | [], rest | rest, [] -> rest
      | (kx, vx) :: xs', (ky, vy) :: ys' ->
          let c = String.compare kx ky in
          if c < 0 then (kx, vx) :: go xs' ys
          else if c > 0 then (ky, vy) :: go xs ys'
          else (kx, combine vx vy) :: go xs' ys'
    in
    go xs ys

  let combine_nodes a b =
    {
      name = a.name;
      calls = a.calls + b.calls;
      total_ms = a.total_ms +. b.total_ms;
      counters = merge_assoc ( +. ) a.counters b.counters;
      gauges = merge_assoc (fun _ later -> later) a.gauges b.gauges;
      hists = merge_assoc Histogram.merge a.hists b.hists;
      series = merge_assoc Series.merge a.series b.series;
      children = a.children @ b.children;
      slices = a.slices @ b.slices;
    }

  (* Merge same-named siblings, preserving first-appearance order. *)
  let rec merge_siblings nodes =
    let order = ref [] in
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun nd ->
        match Hashtbl.find_opt tbl nd.name with
        | None ->
            Hashtbl.add tbl nd.name nd;
            order := nd.name :: !order
        | Some prev -> Hashtbl.replace tbl nd.name (combine_nodes prev nd))
      nodes;
    List.rev_map
      (fun name ->
        let nd = Hashtbl.find tbl name in
        { nd with children = merge_siblings nd.children })
      !order

  let capture () =
    locked @@ fun () ->
    let now = Prelude.Timing.now_ms () in
    let root = root_frame () in
    let epoch = root.start_ms in
    let worker_nodes =
      Hashtbl.fold (fun _ w acc -> w :: acc) workers []
      |> List.sort (fun a b -> compare a.w_index b.w_index)
      |> List.map (fun w ->
             node_of_frame ~epoch w.w_root (now -. w.w_root.start_ms))
    in
    {
      wall_ms = now -. epoch;
      counters = metrics_counters root.fmetrics;
      gauges = metrics_gauges root.fmetrics;
      hists = metrics_hists root.fmetrics;
      series = metrics_series root.fmetrics;
      spans = merge_siblings (List.rev root.fchildren @ worker_nodes);
      events = events_locked ();
      events_dropped = !event_dropped;
    }

  let self_ms nd =
    nd.total_ms
    -. List.fold_left (fun acc c -> acc +. c.total_ms) 0.0 nd.children

  let find t path =
    let rec go nodes = function
      | [] -> None
      | [ name ] -> List.find_opt (fun nd -> nd.name = name) nodes
      | name :: rest -> (
          match List.find_opt (fun nd -> nd.name = name) nodes with
          | Some nd -> go nd.children rest
          | None -> None)
    in
    go t.spans path

  (* -------------------------------------------------------------- *)

  let pp_value ppf v =
    if Float.is_integer v && Float.abs v < 1e15 then
      Format.fprintf ppf "%.0f" v
    else Format.fprintf ppf "%g" v

  let pp_metrics ~indent ppf (counters, gauges, hists, series) =
    let pad = String.make indent ' ' in
    List.iter
      (fun (k, v) -> Format.fprintf ppf "%s. %s = %a@," pad k pp_value v)
      counters;
    List.iter
      (fun (k, v) -> Format.fprintf ppf "%s. %s ~ %a@," pad k pp_value v)
      gauges;
    List.iter
      (fun (k, h) ->
        Format.fprintf ppf "%s. %s : n=%d mean=%a p50=%a p95=%a max=%a@," pad
          k (Histogram.count h) pp_value (Histogram.mean h) pp_value
          (Histogram.quantile h 0.5) pp_value (Histogram.quantile h 0.95)
          pp_value (Histogram.maximum h))
      hists;
    List.iter
      (fun (k, s) ->
        match Series.points s with
        | [] -> ()
        | pts ->
            let x0, y0 = List.hd pts in
            let xn, yn = List.nth pts (List.length pts - 1) in
            Format.fprintf ppf
              "%s. %s -> %d pts (of %d) over [%.1f..%.1f] ms, %a -> %a@," pad
              k (List.length pts) (Series.count s) x0 xn pp_value y0 pp_value
              yn)
      series

  let rec pp_node ~depth ppf nd =
    let indent = 2 * depth in
    let label = String.make indent ' ' ^ nd.name in
    let width = 40 in
    let label =
      if String.length label >= width then label
      else label ^ String.make (width - String.length label) ' '
    in
    Format.fprintf ppf "%s%10.3f ms" label nd.total_ms;
    if nd.calls > 1 then Format.fprintf ppf "  (%d calls)" nd.calls;
    if nd.children <> [] then
      Format.fprintf ppf "  (self %.3f ms)" (self_ms nd);
    Format.fprintf ppf "@,";
    pp_metrics ~indent:(indent + 2) ppf
      (nd.counters, nd.gauges, nd.hists, nd.series);
    List.iter (pp_node ~depth:(depth + 1) ppf) nd.children

  let pp ppf t =
    Format.fprintf ppf "@[<v>-- observability report (wall %.3f ms) --@,"
      t.wall_ms;
    List.iter (pp_node ~depth:0 ppf) t.spans;
    pp_metrics ~indent:0 ppf (t.counters, t.gauges, t.hists, t.series);
    (if t.events <> [] || t.events_dropped > 0 then
       let per lv =
         List.length (List.filter (fun e -> e.Events.level = lv) t.events)
       in
       Format.fprintf ppf
         "events: %d (debug %d, info %d, warn %d, error %d)%s@,"
         (List.length t.events) (per Events.Debug) (per Events.Info)
         (per Events.Warn) (per Events.Error)
         (if t.events_dropped > 0 then
            Printf.sprintf "  [%d dropped]" t.events_dropped
          else ""));
    Format.fprintf ppf "@]"

  (* -------------------------------------------------------------- *)

  let json_metrics (counters, gauges, hists, series) =
    let assoc kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) kvs) in
    let hist h =
      Json.Obj
        [
          ("count", Json.Num (float_of_int (Histogram.count h)));
          ("total", Json.Num (Histogram.total h));
          ("mean", Json.Num (Histogram.mean h));
          ("min", Json.Num (Histogram.minimum h));
          ("max", Json.Num (Histogram.maximum h));
          ("p50", Json.Num (Histogram.quantile h 0.5));
          ("p90", Json.Num (Histogram.quantile h 0.9));
          ("p95", Json.Num (Histogram.quantile h 0.95));
          ("p99", Json.Num (Histogram.quantile h 0.99));
        ]
    in
    let series_obj s =
      Json.Obj
        [
          ("count", Json.Num (float_of_int (Series.count s)));
          ( "points",
            Json.Arr
              (List.map
                 (fun (x, y) -> Json.Arr [ Json.Num x; Json.Num y ])
                 (Series.points s)) );
        ]
    in
    (match counters with [] -> [] | kvs -> [ ("counters", assoc kvs) ])
    @ (match gauges with [] -> [] | kvs -> [ ("gauges", assoc kvs) ])
    @ (match hists with
      | [] -> []
      | kvs ->
          [ ("histograms", Json.Obj (List.map (fun (k, h) -> (k, hist h)) kvs)) ])
    @
    match series with
    | [] -> []
    | kvs ->
        [ ("series", Json.Obj (List.map (fun (k, s) -> (k, series_obj s)) kvs)) ]

  let json_field = function
    | Events.Int i -> Json.Num (float_of_int i)
    | Events.Float f -> Json.Num f
    | Events.Str s -> Json.Str s
    | Events.Bool b -> Json.Bool b

  let json_event (e : Events.event) =
    Json.Obj
      ([
         ("t_ms", Json.Num e.t_ms);
         ("level", Json.Str (Events.level_name e.level));
         ("name", Json.Str e.name);
       ]
      @
      match e.fields with
      | [] -> []
      | fs ->
          [ ("fields", Json.Obj (List.map (fun (k, v) -> (k, json_field v)) fs)) ])

  let rec json_node nd =
    Json.Obj
      ([
         ("name", Json.Str nd.name);
         ("calls", Json.Num (float_of_int nd.calls));
         ("total_ms", Json.Num nd.total_ms);
         ("self_ms", Json.Num (self_ms nd));
       ]
      @ json_metrics (nd.counters, nd.gauges, nd.hists, nd.series)
      @
      match nd.children with
      | [] -> []
      | children -> [ ("spans", Json.Arr (List.map json_node children)) ])

  let to_json t =
    Json.Obj
      ([ ("wall_ms", Json.Num t.wall_ms) ]
      @ json_metrics (t.counters, t.gauges, t.hists, t.series)
      @ [ ("spans", Json.Arr (List.map json_node t.spans)) ]
      @ (match t.events with
        | [] -> []
        | evs -> [ ("events", Json.Arr (List.map json_event evs)) ])
      @
      if t.events_dropped > 0 then
        [ ("events_dropped", Json.Num (float_of_int t.events_dropped)) ]
      else [])

  let to_string t = Json.to_string (to_json t)
end

(* ------------------------------------------------------------------ *)
(* Exports.                                                            *)

module Export = struct
  (* "workers/<i>" top-level spans map to trace lane (tid) i + 1; the
     coordinator's spans go to lane 0. *)
  let worker_lane name =
    let prefix = "workers/" in
    let pl = String.length prefix in
    if String.length name > pl && String.sub name 0 pl = prefix then
      int_of_string_opt (String.sub name pl (String.length name - pl))
    else None

  let chrome_trace (r : Report.t) =
    let out = ref [] in
    let emit ~tid ~cat (nd : Report.node) =
      List.iter
        (fun (start, dur) ->
          out :=
            Json.Obj
              [
                ("name", Json.Str nd.name);
                ("cat", Json.Str cat);
                ("ph", Json.Str "X");
                ("ts", Json.Num (Float.max 0.0 start *. 1000.0));
                ("dur", Json.Num (Float.max 0.0 dur *. 1000.0));
                ("pid", Json.Num 1.0);
                ("tid", Json.Num (float_of_int tid));
              ]
            :: !out)
        nd.slices
    in
    let rec walk ~tid ~path nd =
      emit ~tid ~cat:(if path = "" then "tecore" else path) nd;
      let path = if path = "" then nd.name else path ^ "/" ^ nd.name in
      List.iter (walk ~tid ~path) nd.children
    in
    List.iter
      (fun nd ->
        let tid =
          match worker_lane nd.Report.name with Some k -> k + 1 | None -> 0
        in
        walk ~tid ~path:"" nd)
      r.Report.spans;
    Json.Obj
      [
        ("traceEvents", Json.Arr (List.rev !out));
        ("displayTimeUnit", Json.Str "ms");
      ]

  let validate_trace ?(min_lanes = 1) json =
    match Json.member "traceEvents" json with
    | Some (Json.Arr []) -> Error "trace: empty traceEvents"
    | Some (Json.Arr events) ->
        let lanes = Hashtbl.create 8 in
        let str k ev =
          match Json.member k ev with Some (Json.Str s) -> Some s | _ -> None
        in
        let num k ev =
          match Json.member k ev with Some (Json.Num f) -> Some f | _ -> None
        in
        let rec check i = function
          | [] ->
              if Hashtbl.length lanes < min_lanes then
                Error
                  (Printf.sprintf "trace: %d lane(s), expected >= %d"
                     (Hashtbl.length lanes) min_lanes)
              else Ok ()
          | ev :: rest -> (
              match
                ( str "ph" ev,
                  str "name" ev,
                  num "ts" ev,
                  num "dur" ev,
                  num "pid" ev,
                  num "tid" ev )
              with
              | Some "X", Some _, Some ts, Some dur, Some _, Some tid ->
                  if ts < 0.0 || dur < 0.0 then
                    Error (Printf.sprintf "trace: event %d: negative ts/dur" i)
                  else begin
                    Hashtbl.replace lanes tid ();
                    check (i + 1) rest
                  end
              | _ ->
                  Error
                    (Printf.sprintf
                       "trace: event %d: missing or ill-typed \
                        ph/name/ts/dur/pid/tid"
                       i))
        in
        check 0 events
    | _ -> Error "trace: missing traceEvents array"

  (* ---------------------------------------------------------------- *)

  let metric_value f =
    if Float.is_nan f then "NaN"
    else if f = Float.infinity then "+Inf"
    else if f = Float.neg_infinity then "-Inf"
    else Json.number f

  let label_value s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let labels kvs =
    match kvs with
    | [] -> ""
    | kvs ->
        "{"
        ^ String.concat ","
            (List.map
               (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (label_value v))
               kvs)
        ^ "}"

  let path_label path = if path = "" then [] else [ ("path", path) ]

  let open_metrics (r : Report.t) =
    (* Collect rows per family first so each # TYPE line precedes all
       of its samples, as the OpenMetrics grammar requires. Span paths
       are unique after sibling merging, so label sets never repeat. *)
    let span_rows = ref [] in
    let counter_rows = ref [] in
    let gauge_rows = ref [] in
    let hist_rows = ref [] in
    let series_rows = ref [] in
    let add_metrics ~path (nd_counters, nd_gauges, nd_hists, nd_series) =
      List.iter
        (fun (k, v) -> counter_rows := (path, k, v) :: !counter_rows)
        nd_counters;
      List.iter
        (fun (k, v) -> gauge_rows := (path, k, v) :: !gauge_rows)
        nd_gauges;
      List.iter (fun (k, h) -> hist_rows := (path, k, h) :: !hist_rows) nd_hists;
      List.iter
        (fun (k, s) -> series_rows := (path, k, s) :: !series_rows)
        nd_series
    in
    let rec walk path (nd : Report.node) =
      let path = if path = "" then nd.name else path ^ "/" ^ nd.name in
      span_rows := (path, nd.total_ms, nd.calls) :: !span_rows;
      add_metrics ~path (nd.counters, nd.gauges, nd.hists, nd.series);
      List.iter (walk path) nd.children
    in
    add_metrics ~path:"" (r.counters, r.gauges, r.hists, r.series);
    List.iter (walk "") r.spans;
    let buf = Buffer.create 1024 in
    let line fmt =
      Printf.ksprintf
        (fun s ->
          Buffer.add_string buf s;
          Buffer.add_char buf '\n')
        fmt
    in
    line "# TYPE tecore_wall_ms gauge";
    line "tecore_wall_ms %s" (metric_value r.wall_ms);
    (match List.rev !span_rows with
    | [] -> ()
    | rows ->
        line "# TYPE tecore_span_ms counter";
        List.iter
          (fun (path, ms, _) ->
            line "tecore_span_ms_total%s %s"
              (labels (path_label path))
              (metric_value ms))
          rows;
        line "# TYPE tecore_span_calls counter";
        List.iter
          (fun (path, _, calls) ->
            line "tecore_span_calls_total%s %d" (labels (path_label path)) calls)
          rows);
    (match List.rev !counter_rows with
    | [] -> ()
    | rows ->
        line "# TYPE tecore_counter counter";
        List.iter
          (fun (path, k, v) ->
            line "tecore_counter_total%s %s"
              (labels (path_label path @ [ ("name", k) ]))
              (metric_value v))
          rows);
    (match List.rev !gauge_rows with
    | [] -> ()
    | rows ->
        line "# TYPE tecore_gauge gauge";
        List.iter
          (fun (path, k, v) ->
            line "tecore_gauge%s %s"
              (labels (path_label path @ [ ("name", k) ]))
              (metric_value v))
          rows);
    (match List.rev !hist_rows with
    | [] -> ()
    | rows ->
        line "# TYPE tecore_histogram summary";
        List.iter
          (fun (path, k, h) ->
            let base = path_label path @ [ ("name", k) ] in
            List.iter
              (fun q ->
                line "tecore_histogram%s %s"
                  (labels (base @ [ ("quantile", Json.number q) ]))
                  (metric_value (Histogram.quantile h q)))
              [ 0.5; 0.9; 0.95; 0.99 ];
            line "tecore_histogram_sum%s %s" (labels base)
              (metric_value (Histogram.total h));
            line "tecore_histogram_count%s %d" (labels base)
              (Histogram.count h))
          rows);
    (match List.rev !series_rows with
    | [] -> ()
    | rows ->
        line "# TYPE tecore_series_points gauge";
        List.iter
          (fun (path, k, s) ->
            line "tecore_series_points%s %d"
              (labels (path_label path @ [ ("name", k) ]))
              (Series.count s))
          rows;
        line "# TYPE tecore_series_last gauge";
        List.iter
          (fun (path, k, s) ->
            match List.rev (Series.points s) with
            | (_, y) :: _ ->
                line "tecore_series_last%s %s"
                  (labels (path_label path @ [ ("name", k) ]))
                  (metric_value y)
            | [] -> ())
          rows);
    (if r.events <> [] then begin
       line "# TYPE tecore_events counter";
       List.iter
         (fun lv ->
           let n =
             List.length (List.filter (fun e -> e.Events.level = lv) r.events)
           in
           line "tecore_events_total%s %d"
             (labels [ ("level", Events.level_name lv) ])
             n)
         [ Events.Debug; Events.Info; Events.Warn; Events.Error ]
     end);
    (* Always emitted, so scrapers can alert on ring overflow even when
       the ring itself is empty (e.g. right after a capacity resize). *)
    line "# TYPE tecore_events_dropped counter";
    line "tecore_events_dropped_total %d" r.events_dropped;
    line "# EOF";
    Buffer.contents buf

  let validate_metrics text =
    let lines = String.split_on_char '\n' text in
    let rec strip_last = function
      | [ "" ] -> []
      | x :: rest -> x :: strip_last rest
      | [] -> []
    in
    let lines = strip_last lines in
    let is_name_char c =
      (c >= 'a' && c <= 'z')
      || (c >= 'A' && c <= 'Z')
      || (c >= '0' && c <= '9')
      || c = '_' || c = ':'
    in
    let metric_ok l =
      let n = String.length l in
      let i = ref 0 in
      while !i < n && is_name_char l.[!i] do
        incr i
      done;
      if !i = 0 then false
      else begin
        let ok = ref true in
        (if !i < n && l.[!i] = '{' then begin
           incr i;
           let in_str = ref false and esc = ref false and closed = ref false in
           while !i < n && not !closed do
             let c = l.[!i] in
             (if !esc then esc := false
              else if !in_str then
                if c = '\\' then esc := true
                else if c = '"' then in_str := false
                else ()
              else if c = '"' then in_str := true
              else if c = '}' then closed := true);
             incr i
           done;
           if not !closed then ok := false
         end);
        !ok && !i < n
        && l.[!i] = ' '
        &&
        let v = String.sub l (!i + 1) (n - !i - 1) in
        match v with
        | "+Inf" | "-Inf" | "NaN" -> true
        | _ -> float_of_string_opt v <> None
      end
    in
    let known_types =
      [ "counter"; "gauge"; "summary"; "histogram"; "info"; "stateset";
        "unknown" ]
    in
    let rec go lineno saw_eof = function
      | [] -> if saw_eof then Ok () else Error "metrics: missing # EOF"
      | l :: rest ->
          if saw_eof then
            Error (Printf.sprintf "metrics: line %d: content after # EOF" lineno)
          else if l = "# EOF" then go (lineno + 1) true rest
          else if l = "" then
            Error (Printf.sprintf "metrics: line %d: blank line" lineno)
          else if l.[0] = '#' then (
            match String.split_on_char ' ' l with
            | [ "#"; "TYPE"; name; typ ]
              when name <> "" && List.mem typ known_types ->
                go (lineno + 1) false rest
            | "#" :: "HELP" :: name :: _ when name <> "" ->
                go (lineno + 1) false rest
            | [ "#"; "UNIT"; name; _ ] when name <> "" ->
                go (lineno + 1) false rest
            | _ ->
                Error
                  (Printf.sprintf "metrics: line %d: malformed metadata line"
                     lineno))
          else if metric_ok l then go (lineno + 1) false rest
          else
            Error (Printf.sprintf "metrics: line %d: malformed metric line" lineno)
    in
    go 1 false lines
end

(* Profile crew tasks as per-domain spans: the hook runs on whichever
   domain executes the task, so tasks picked up by a worker land in its
   "workers/<i>" lane while tasks the coordinator deals to itself nest
   under its open span. Disabled observability tail-calls the task. *)
let () = Prelude.Pool.set_task_hook (Some (fun f -> span "task" f))
