(** Zero-dependency observability for the TeCoRe pipeline.

    The library keeps one implicit thread of hierarchical spans. Code
    under measurement wraps stages in {!span} and drops {!count},
    {!gauge} and {!record} calls wherever interesting quantities are
    produced; all of them attach to the innermost open span. When
    observation is disabled (the default) every entry point reduces to a
    single flag test, so instrumentation can stay in hot paths
    permanently.

    Metric entry points ({!count}, {!add}, {!gauge}, {!record}) are safe
    to call from worker domains of a {!Prelude.Pool} while the
    coordinating domain blocks in the join: registry mutation is
    serialised by an internal mutex and the emissions attach to the span
    the coordinator has open. Only the coordinating domain should open
    {!span}s.

    Typical use:

    {[
      Obs.set_enabled true;
      let result = Obs.span "resolve" (fun () -> run ()) in
      let report = Obs.Report.capture () in
      Format.printf "%a" Obs.Report.pp report
    ]} *)

val enabled : unit -> bool
(** Whether spans and metrics are being collected. *)

val set_enabled : bool -> unit
(** Turn collection on or off. Turning it on does not reset previously
    collected data; call {!reset} for a clean slate. *)

val reset : unit -> unit
(** Drop all collected spans and metrics and restart the wall clock.
    Any spans currently open are abandoned (their exit is ignored). *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()] inside a span called [name]. Spans nest:
    spans opened while [f] runs become children of this one. The span is
    closed even when [f] raises. Repeated spans with the same name under
    the same parent are merged at {!Report.capture} time (their call
    counts and durations accumulate). Disabled: tail-calls [f]. *)

val count : ?n:int -> string -> unit
(** [count name] bumps the counter [name] of the innermost open span by
    [n] (default 1). Counters accumulate over merged spans. *)

val add : string -> float -> unit
(** Like {!count} with a float increment. *)

val gauge : string -> float -> unit
(** [gauge name v] sets gauge [name] of the innermost open span to [v];
    the most recent write wins, also across merged spans. *)

val record : string -> float -> unit
(** [record name v] appends an observation to histogram [name] of the
    innermost open span. *)

val set_trace : (depth:int -> string -> float -> unit) option -> unit
(** Install a hook invoked at every span close with the span's depth
    (0 = top level), name and elapsed milliseconds — children report
    before their parents. [None] uninstalls. The hook only fires while
    collection is enabled. *)

(** Growable sample reservoir with quantile queries, used for
    solver-iteration metrics (flips per solve, nodes per MILP call, ...). *)
module Histogram : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val total : t -> float
  val mean : t -> float
  (** [nan] when empty. *)

  val minimum : t -> float
  val maximum : t -> float

  val quantile : t -> float -> float
  (** Nearest-rank quantile: [quantile h q] with [q] clamped to [0, 1]
      returns the smallest sample s.t. at least [ceil (q * count)]
      samples are [<=] it ([q = 0] gives the minimum). [nan] when
      empty. *)

  val merge : t -> t -> t
  (** A new histogram holding both sample sets. *)

  val to_list : t -> float list
  (** Samples in insertion order. *)
end

(** A minimal JSON tree: enough to emit reports, parse them back (for
    round-trip tests and benchmark validation), and build ad-hoc
    documents without external dependencies. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact rendering. Non-finite numbers render as [null]. *)

  val parse : string -> (t, string) result
  (** Strict parser for the subset above (no trailing garbage). Errors
      mention the byte offset. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] otherwise. *)
end

(** Aggregated view of everything collected since the last {!reset}. *)
module Report : sig
  type node = {
    name : string;
    calls : int;
    total_ms : float;
    counters : (string * float) list;  (** sorted by name *)
    gauges : (string * float) list;
    hists : (string * Histogram.t) list;
    children : node list;
  }

  type t = {
    wall_ms : float;  (** wall time since the last {!reset} *)
    counters : (string * float) list;  (** recorded outside any span *)
    gauges : (string * float) list;
    hists : (string * Histogram.t) list;
    spans : node list;
  }

  val capture : unit -> t
  (** Snapshot of all {e completed} top-level spans (still-open spans
      are not included) plus root-level metrics. Does not reset. *)

  val self_ms : node -> float
  (** [total_ms] minus the children's [total_ms]. *)

  val find : t -> string list -> node option
  (** [find t path] follows span names from the top, e.g.
      [find t ["resolve"; "ground"]]. *)

  val pp : Format.formatter -> t -> unit
  (** Human-readable stage tree with timings and metrics. *)

  val to_json : t -> Json.t

  val to_string : t -> string
  (** [to_json] rendered compactly. *)
end
