(** Zero-dependency observability for the TeCoRe pipeline.

    The library keeps one implicit stack of hierarchical spans per
    domain. Code under measurement wraps stages in {!span} and drops
    {!count}, {!gauge}, {!record}, {!sample} and {!event} calls wherever
    interesting quantities are produced; metrics attach to the innermost
    open span of the calling domain. When observation is disabled (the
    default) every entry point reduces to a single flag test, so
    instrumentation can stay in hot paths permanently.

    The domain that last called {!reset} owns the main span stack; any
    other domain that opens a span (in practice: {!Prelude.Pool} crew
    workers, via the per-task hook this library installs at load time)
    collects into its own lane, reported as a top-level ["workers/<i>"]
    subtree. All entry points are serialised by an internal mutex and
    safe to call from any domain.

    Typical use:

    {[
      Obs.set_enabled true;
      let result = Obs.span "resolve" (fun () -> run ()) in
      let report = Obs.Report.capture () in
      Format.printf "%a" Obs.Report.pp report
    ]} *)

val enabled : unit -> bool
(** Whether spans and metrics are being collected. *)

val set_enabled : bool -> unit
(** Turn collection on or off. Turning it on does not reset previously
    collected data; call {!reset} for a clean slate. *)

val reset : unit -> unit
(** Drop all collected spans, metrics, worker lanes and events, restart
    the wall clock, and make the calling domain the owner of the main
    span stack. Any spans currently open are abandoned (their exit is
    ignored). *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()] inside a span called [name]. Spans nest:
    spans opened while [f] runs become children of this one. The span is
    closed even when [f] raises. Repeated spans with the same name under
    the same parent are merged at {!Report.capture} time (their call
    counts and durations accumulate). On a domain other than the main
    stack's owner the span lands in that domain's ["workers/<i>"] lane.
    Whether or not collection is enabled, a span also records its
    elapsed time into the calling thread's installed {!Phases.ctx}, if
    any. Disabled and with no context installed: tail-calls [f]. *)

val count : ?n:int -> string -> unit
(** [count name] bumps the counter [name] of the innermost open span by
    [n] (default 1). Counters accumulate over merged spans. *)

val add : string -> float -> unit
(** Like {!count} with a float increment. *)

val gauge : string -> float -> unit
(** [gauge name v] sets gauge [name] of the innermost open span to [v];
    the most recent write wins, also across merged spans. *)

val record : string -> float -> unit
(** [record name v] appends an observation to histogram [name] of the
    innermost open span. *)

val set_trace : (depth:int -> string -> float -> unit) option -> unit
(** Install a hook invoked at every span close with the span's depth
    (0 = top level), name and elapsed milliseconds — children report
    before their parents. [None] uninstalls. The hook only fires while
    collection is enabled. *)

(** Timestamped, leveled, key-value events — the structured log. *)
module Events : sig
  type level = Debug | Info | Warn | Error

  type value = Int of int | Float of float | Str of string | Bool of bool

  type event = {
    t_ms : float;  (** milliseconds since the last {!reset} *)
    level : level;
    name : string;
    fields : (string * value) list;
  }

  val severity : level -> int
  (** [Debug] = 0 up to [Error] = 3, for threshold filtering. *)

  val level_name : level -> string
  (** ["debug"], ["info"], ["warn"], ["error"]. *)

  val level_of_string : string -> level option
  (** Inverse of {!level_name} (also accepts ["warning"]). *)

  val value_to_string : value -> string
end

val event : ?level:Events.level -> string -> (string * Events.value) list -> unit
(** [event ~level name fields] appends an event to the bounded ring
    buffer (default level [Info]). When the ring is full the oldest
    event is dropped and the drop counter bumped, so the newest
    [capacity] events are always retained. Disabled: no-op. *)

val set_event_hook : (Events.event -> unit) option -> unit
(** Install a hook invoked synchronously on every {!event} emission (the
    CLI's [--log-level] streams to stderr through this). The hook runs
    under the internal mutex: it must not call back into [Obs]. [None]
    uninstalls. *)

val set_event_capacity : int -> unit
(** Resize the event ring (clamped to >= 1), keeping the newest events;
    discarded events count as dropped. The capacity survives {!reset}.
    Default 4096. *)

val event_capacity : unit -> int

val events_dropped : unit -> int
(** Events lost to ring overflow since the last {!reset}. *)

(** Bounded sample reservoir with quantile queries, used for
    solver-iteration metrics (flips per solve, nodes per MILP call, ...)
    and the server's per-phase latency histograms. Storage is exact up
    to [cap] samples; past that it degrades to a uniform reservoir
    (deterministic Vitter algorithm R), so quantiles below the cap are
    exact, quantiles above are estimates, and memory stays O(cap)
    however long the stream runs. [count], [total], [mean], [minimum]
    and [maximum] are exact for the whole stream regardless. *)
module Histogram : sig
  type t

  val create : ?cap:int -> unit -> t
  (** [cap] is the retained-sample bound (default 4096, clamped
      to >= 1). *)

  val add : t -> float -> unit
  val count : t -> int
  (** Samples offered, including reservoir-displaced ones. *)

  val total : t -> float
  val mean : t -> float
  (** [nan] when empty. *)

  val minimum : t -> float
  val maximum : t -> float

  val stored : t -> int
  (** Samples currently retained ([<= capacity]). *)

  val capacity : t -> int

  val quantile : t -> float -> float
  (** Nearest-rank quantile over the retained samples: [quantile h q]
      with [q] clamped to [0, 1] returns the smallest retained sample
      s.t. at least [ceil (q * stored)] retained samples are [<=] it
      ([q = 0] gives the minimum). Exact while [count <= capacity].
      [nan] when empty. *)

  val merge : t -> t -> t
  (** A new histogram holding both sample sets, never aliasing either
      input, with capacity [max (capacity a) (capacity b)]. When the
      combined retained samples exceed that capacity they are decimated
      at a fixed stride, so merging is deterministic: merging the same
      pair twice gives identical histograms. Stream-exact fields
      ([count], [total], [minimum], [maximum]) combine exactly. *)

  val to_list : t -> float list
  (** Retained samples in insertion order (up to reservoir
      displacement). *)
end

(** Per-request phase accumulators, the server-side complement to the
    process-wide span tree: a {!Phases.ctx} installed with
    {!with_phases} captures the elapsed time of every {!span} and
    {!phase} run by the installing thread, whether or not global
    collection is enabled. [tecore serve] uses one context per traced
    request to attribute its latency to
    parse/queue/lock/ground/solve/journal/fsync/reply. *)
module Phases : sig
  type ctx

  val create : ?only:string list -> unit -> ctx
  (** A fresh, empty context. With [only], spans whose name is not
      listed are ignored (the server's filter against non-taxonomy
      engine spans); nested captured spans attribute to the outermost
      one, so e.g. a cutting-plane re-ground inside ["solve"] is not
      double-counted. *)

  val record : ctx -> string -> float -> unit
  (** Append a directly-measured [(phase, elapsed-ms)] entry, bypassing
      the [only] filter (used for queue wait, which is computed from
      timestamps rather than a bracket). *)

  val entries : ctx -> (string * float) list
  (** Captured entries in insertion order. *)

  val total : ctx -> float
  (** Sum of all captured durations. *)
end

val with_phases : Phases.ctx -> (unit -> 'a) -> 'a
(** [with_phases ctx f] installs [ctx] as the calling {e systhread}'s
    phase context for the duration of [f] (restoring any previously
    installed one afterwards, so nesting is safe). While installed,
    {!span} and {!phase} on this thread record into [ctx]. A context
    may be handed between threads — the server installs the same
    request context on the connection thread and, for the solve, on the
    resolver thread — but must only be installed on one running thread
    at a time. *)

val phase : string -> (unit -> 'a) -> 'a
(** [phase name f] times [f ()] into the calling thread's installed
    phase context. Unlike {!span} it never touches the global span
    tree, so it is safe on server connection threads even while
    process-wide collection is enabled. Without an installed context it
    tail-calls [f]. *)

(** Bounded [(x, y)] timeline for convergence curves. Downsampling is by
    decimation (drop every other kept point and double the stride when
    the buffer fills), so the retained points are a subsequence of the
    input — monotone inputs stay monotone — and memory is O(cap) however
    many samples are offered. The most recent sample is always
    retained. *)
module Series : sig
  type t

  val create : ?cap:int -> unit -> t
  (** [cap] is the retention bound (default 512, clamped to >= 8). *)

  val add : t -> x:float -> y:float -> unit

  val count : t -> int
  (** Samples offered, including downsampled-away ones. *)

  val length : t -> int
  (** Points currently retained. *)

  val points : t -> (float * float) list
  (** Retained points in insertion order, ending at the most recent
      sample. *)

  val merge : t -> t -> t
  (** Points of both series, re-sorted by [x] (stable), re-bounded. *)
end

val sample : string -> t_ms:float -> v:float -> unit
(** [sample name ~t_ms ~v] appends a point to series [name] of the
    innermost open span. [t_ms] is an absolute {!Prelude.Timing.now_ms}
    timestamp; it is stored relative to the last {!reset}, so points
    from repeated solver invocations stay globally ordered. Disabled:
    no-op. *)

(** A minimal JSON tree: enough to emit reports, parse them back (for
    round-trip tests and benchmark validation), and build ad-hoc
    documents without external dependencies. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val number : float -> string
  (** A finite float rendered so that [float_of_string] returns it
      exactly (shortest of %.12g/%.15g/%.16g/%.17g); non-finite floats
      render as ["null"]. *)

  val to_string : t -> string
  (** Compact rendering. Numbers round-trip exactly (see {!number});
      non-finite numbers render as [null]. *)

  val parse : string -> (t, string) result
  (** Strict parser for the subset above (no trailing garbage). Numbers
      that do not denote a finite float (e.g. ["1e999"]) are rejected.
      Errors mention the byte offset. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] otherwise. *)
end

(** Aggregated view of everything collected since the last {!reset}. *)
module Report : sig
  type node = {
    name : string;
    calls : int;
    total_ms : float;
    counters : (string * float) list;  (** sorted by name *)
    gauges : (string * float) list;
    hists : (string * Histogram.t) list;
    series : (string * Series.t) list;
    children : node list;
    slices : (float * float) list;
        (** per call: (start offset from the last {!reset}, duration)
            in ms — the raw intervals behind {!Export.chrome_trace} *)
  }

  type t = {
    wall_ms : float;  (** wall time since the last {!reset} *)
    counters : (string * float) list;  (** recorded outside any span *)
    gauges : (string * float) list;
    hists : (string * Histogram.t) list;
    series : (string * Series.t) list;
    spans : node list;
        (** completed top-level spans, then one ["workers/<i>"] node per
            domain that opened spans of its own *)
    events : Events.event list;  (** oldest first *)
    events_dropped : int;
  }

  val capture : unit -> t
  (** Snapshot of all {e completed} top-level spans (still-open spans
      are not included) plus root-level metrics, worker lanes and the
      event log. Does not reset. *)

  val self_ms : node -> float
  (** [total_ms] minus the children's [total_ms]. *)

  val find : t -> string list -> node option
  (** [find t path] follows span names from the top, e.g.
      [find t ["resolve"; "ground"]]. *)

  val pp : Format.formatter -> t -> unit
  (** Human-readable stage tree with timings, metrics (histograms with
      p50/p95/max), series summaries and an event-count footer. *)

  val to_json : t -> Json.t
  (** Events and series appear only when non-empty, so reports from
      runs that emit neither are unchanged from earlier releases. *)

  val to_string : t -> string
  (** [to_json] rendered compactly. *)
end

(** Machine-consumable renderings of a captured {!Report.t}. *)
module Export : sig
  val chrome_trace : Report.t -> Json.t
  (** Chrome [trace_event] document (an object with a [traceEvents]
      array of complete ["X"] events carrying [name/cat/ph/ts/dur/pid/
      tid], timestamps in microseconds). Load it in [chrome://tracing]
      or Perfetto. The coordinator's spans appear on [tid] 0 and each
      ["workers/<i>"] lane on [tid] [i + 1], so parallel sections show
      true per-worker utilisation. *)

  val validate_trace : ?min_lanes:int -> Json.t -> (unit, string) result
  (** Structural check used by CI: non-empty [traceEvents], every event
      a complete ["X"] event with non-negative [ts]/[dur], and at least
      [min_lanes] (default 1) distinct [tid] lanes. *)

  val open_metrics : Report.t -> string
  (** OpenMetrics/Prometheus text exposition of the whole report:
      span times and call counts ([tecore_span_ms_total],
      [tecore_span_calls_total]) labelled with their span path,
      counters/gauges, histograms as summaries with [quantile] labels
      plus [_sum]/[_count], series sizes and last values, event counts
      per level, terminated by [# EOF]. Suitable for the node_exporter
      textfile collector. *)

  val validate_metrics : string -> (unit, string) result
  (** Small OpenMetrics grammar check used by CI: every line is a
      well-formed metadata line ([# TYPE]/[# HELP]/[# UNIT]) or sample
      line (name, optional labels, float value), and the exposition ends
      with [# EOF]. *)
end
