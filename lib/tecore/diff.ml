type t = {
  only_left : Kg.Quad.t list;
  only_right : Kg.Quad.t list;
  confidence_changed : (Kg.Quad.t * Kg.Quad.t) list;
  unchanged : int;
}

(* Statement key: triple + interval, ignoring confidence. *)
let key (q : Kg.Quad.t) =
  ( Kg.Term.to_string q.subject,
    Kg.Term.to_string q.predicate,
    Kg.Term.to_string q.object_,
    Kg.Interval.lo q.time,
    Kg.Interval.hi q.time )

let index graph =
  let table = Hashtbl.create 256 in
  Kg.Graph.iter (fun _ q -> Hashtbl.replace table (key q) q) graph;
  table

let diff left right =
  let left_index = index left in
  let right_index = index right in
  let only_left = ref [] in
  let only_right = ref [] in
  let confidence_changed = ref [] in
  let unchanged = ref 0 in
  Hashtbl.iter
    (fun k (lq : Kg.Quad.t) ->
      match Hashtbl.find_opt right_index k with
      | None -> only_left := lq :: !only_left
      | Some rq ->
          if Float.equal lq.confidence rq.confidence then incr unchanged
          else confidence_changed := (lq, rq) :: !confidence_changed)
    left_index;
  Hashtbl.iter
    (fun k rq ->
      if not (Hashtbl.mem left_index k) then only_right := rq :: !only_right)
    right_index;
  let sort = List.sort Kg.Quad.compare in
  {
    only_left = sort !only_left;
    only_right = sort !only_right;
    confidence_changed =
      List.sort (fun (a, _) (b, _) -> Kg.Quad.compare a b) !confidence_changed;
    unchanged = !unchanged;
  }

let is_empty t =
  t.only_left = [] && t.only_right = [] && t.confidence_changed = []

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun q -> Format.fprintf ppf "- %a@ " Kg.Quad.pp q) t.only_left;
  List.iter (fun q -> Format.fprintf ppf "+ %a@ " Kg.Quad.pp q) t.only_right;
  List.iter
    (fun ((l : Kg.Quad.t), (r : Kg.Quad.t)) ->
      Format.fprintf ppf "~ %a (%.3g -> %.3g)@ " Kg.Quad.pp l l.confidence
        r.confidence)
    t.confidence_changed;
  Format.fprintf ppf "%d unchanged@]" t.unchanged
