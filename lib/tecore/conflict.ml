module Store = Grounder.Atom_store
module Instance = Grounder.Ground.Instance

type derived_fact = {
  atom : Logic.Atom.Ground.t;
  confidence : float;
  as_quad : Kg.Quad.t option;
}

type resolution = {
  consistent : Kg.Graph.t;
  removed : (Kg.Graph.id * Kg.Quad.t) list;
  derived : derived_fact list;
  conflicting : Kg.Graph.id list;
  kept : int;
}

let sigmoid x = 1.0 /. (1.0 +. exp (-.x))

(* Facts involved in a hard constraint instance that is violated when all
   evidence is taken at face value — the conflicts the debugger reports. *)
let conflicting_facts store instances =
  let ids = Hashtbl.create 256 in
  List.iter
    (fun { Instance.rule; body_atoms; head } ->
      let is_violation =
        head = Instance.Violated && Logic.Rule.is_hard rule
      in
      if is_violation then
        List.iter
          (fun atom_id ->
            List.iter
              (fun fact -> Hashtbl.replace ids fact ())
              (Store.evidence_facts store atom_id))
          body_atoms)
    instances;
  Hashtbl.fold (fun id () acc -> id :: acc) ids [] |> List.sort Int.compare

(* Support of a hidden atom: total weight of its firing derivations. *)
let derived_confidences instances assignment =
  let support = Hashtbl.create 64 in
  List.iter
    (fun { Instance.rule; body_atoms; head } ->
      match head with
      | Instance.Derives h when assignment.(h) ->
          let body_true = List.for_all (fun b -> assignment.(b)) body_atoms in
          if body_true then begin
            let w =
              match rule.Logic.Rule.weight with
              | Some w -> w
              | None -> Kg.Quad.max_weight
            in
            Hashtbl.replace support h
              (w +. Option.value (Hashtbl.find_opt support h) ~default:0.0)
          end
      | _ -> ())
    instances;
  fun atom_id ->
    sigmoid (Option.value (Hashtbl.find_opt support atom_id) ~default:0.0)

let interpret ~graph ~store ~instances ~assignment () =
  let consistent = Kg.Graph.copy graph in
  let removed = ref [] in
  let derived = ref [] in
  let kept = ref 0 in
  let confidence_of = derived_confidences instances assignment in
  Store.iter
    (fun atom_id atom origin ->
      match origin with
      | Store.Evidence _ ->
          (* A decision about the atom applies to every duplicate fact
             behind it. *)
          let facts = Store.evidence_facts store atom_id in
          if assignment.(atom_id) then kept := !kept + List.length facts
          else
            List.iter
              (fun fact ->
                Kg.Graph.remove consistent fact;
                removed := (fact, Kg.Graph.find graph fact) :: !removed)
              facts
      | Store.Hidden ->
          if assignment.(atom_id) then begin
            let confidence = confidence_of atom_id in
            let as_quad = Logic.Atom.Ground.to_quad ~confidence atom in
            (match as_quad with
            | Some q -> ignore (Kg.Graph.add consistent q)
            | None -> ());
            derived := { atom; confidence; as_quad } :: !derived
          end)
    store;
  {
    consistent;
    removed = List.rev !removed;
    derived = List.rev !derived;
    conflicting = conflicting_facts store instances;
    kept = !kept;
  }

let apply_threshold threshold r =
  let keep, drop =
    List.partition (fun d -> d.confidence >= threshold) r.derived
  in
  let consistent = Kg.Graph.copy r.consistent in
  (* Derived quads were appended after the original facts; drop them by
     statement identity. *)
  List.iter
    (fun d ->
      match d.as_quad with
      | None -> ()
      | Some q ->
          Kg.Graph.iter
            (fun id q' ->
              if Kg.Quad.same_statement q q' then Kg.Graph.remove consistent id)
            consistent)
    drop;
  { r with consistent; derived = keep }

let pp_summary ppf r =
  Format.fprintf ppf
    "@[<v>kept facts:        %d@ removed facts:     %d@ derived facts:     \
     %d@ conflicting facts: %d@]"
    r.kept
    (List.length r.removed)
    (List.length r.derived)
    (List.length r.conflicting)
