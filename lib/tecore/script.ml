type command =
  | Load of string
  | Assert_ of string
  | Retract of string
  | Rule of string
  | Unrule of string
  | Resolve of [ `Fresh | `Incremental ]
  | Diff

type located = { cmd : command; line : int; column : int }

type t = { path : string; commands : located list }

type error = { path : string; line : int; column : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "%s:%d:%d: %s" e.path e.line e.column e.message

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let is_space c = c = ' ' || c = '\t' || c = '\r'

(* First non-space index from [i], clamped to the line length. *)
let skip_spaces line i =
  let n = String.length line in
  let rec go i = if i < n && is_space line.[i] then go (i + 1) else i in
  go i

let word_end line i =
  let n = String.length line in
  let rec go i = if i < n && not (is_space line.[i]) then go (i + 1) else i in
  go i

let rstrip line =
  let n = String.length line in
  let rec go n = if n > 0 && is_space line.[n - 1] then go (n - 1) else n in
  String.sub line 0 (go n)

(* Validate an assert/retract payload: it must be a single well-formed
   fact. Parsed against a throwaway namespace — the real parse happens
   at execution time against the session's namespace. [col0] is the
   0-based offset of the payload within the script line, used to map
   payload-relative error columns back to script coordinates. *)
let check_fact ~path ~line ~col0 payload =
  match Kg.Nquads.parse_string ~namespace:(Kg.Namespace.create ()) payload with
  | Error e ->
      let column = match e.Kg.Nquads.column with Some c -> col0 + c | None -> col0 + 1 in
      Error { path; line; column; message = e.Kg.Nquads.message }
  | Ok g -> (
      match Kg.Graph.to_list g with
      | [ _ ] -> Ok ()
      | facts ->
          Error
            {
              path;
              line;
              column = col0 + 1;
              message =
                Printf.sprintf "expected exactly one fact, got %d"
                  (List.length facts);
            })

let check_rule ~path ~line ~col0 payload =
  match
    Rulelang.Parser.parse_string ~namespace:(Kg.Namespace.create ()) payload
  with
  | Error e ->
      (* Rule payloads are single lines, so the parser's own line number
         is always 1; the useful coordinate is the payload start. *)
      Error { path; line; column = col0 + 1; message = e.Rulelang.Parser.message }
  | Ok [] ->
      Error
        { path; line; column = col0 + 1; message = "expected a rule declaration" }
  | Ok _ -> Ok ()

let parse_line ~path ~line raw =
  let raw = rstrip raw in
  let ks = skip_spaces raw 0 in
  if ks >= String.length raw || raw.[ks] = '#' then Ok None
  else
    let ke = word_end raw ks in
    let keyword = String.sub raw ks (ke - ks) in
    let ps = skip_spaces raw ke in
    let payload = String.sub raw ps (String.length raw - ps) in
    let col_kw = ks + 1 in
    let col_arg = ps + 1 in
    let err column message = Error { path; line; column; message } in
    let require_arg what k =
      if payload = "" then err col_arg (keyword ^ ": missing " ^ what)
      else k payload
    in
    let cmd c = Ok (Some { cmd = c; line; column = col_kw }) in
    match keyword with
    | "load" -> require_arg "file path" (fun p -> cmd (Load p))
    | "assert" ->
        require_arg "fact" (fun p ->
            match check_fact ~path ~line ~col0:ps p with
            | Ok () -> cmd (Assert_ p)
            | Error e -> Error e)
    | "retract" ->
        require_arg "fact" (fun p ->
            match check_fact ~path ~line ~col0:ps p with
            | Ok () -> cmd (Retract p)
            | Error e -> Error e)
    | "rule" | "constraint" ->
        (* The payload is the whole line: the rule language's own
           declarations already start with [rule]/[constraint]. *)
        let decl = String.sub raw ks (String.length raw - ks) in
        require_arg "rule declaration" (fun _ ->
            match check_rule ~path ~line ~col0:ks decl with
            | Ok () -> cmd (Rule decl)
            | Error e -> Error e)
    | "unrule" -> require_arg "rule name" (fun p -> cmd (Unrule p))
    | "resolve" -> (
        match payload with
        | "" | "incremental" -> cmd (Resolve `Incremental)
        | "fresh" -> cmd (Resolve `Fresh)
        | other ->
            err col_arg
              (Printf.sprintf
                 "resolve: expected \"fresh\" or \"incremental\", got %S" other))
    | "diff" ->
        if payload = "" then cmd Diff
        else err col_arg "diff takes no argument"
    | other -> err col_kw (Printf.sprintf "unknown command %S" other)

let parse_command ~path ~line raw = parse_line ~path ~line raw

let parse_string ~path text =
  let lines = String.split_on_char '\n' text in
  let rec go line acc = function
    | [] -> Ok { path; commands = List.rev acc }
    | raw :: rest -> (
        match parse_line ~path ~line raw with
        | Ok None -> go (line + 1) acc rest
        | Ok (Some c) -> go (line + 1) (c :: acc) rest
        | Error e -> Error e)
  in
  go 1 [] lines

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let parse_fact ~session payload =
  match
    Kg.Nquads.parse_string ~namespace:(Session.namespace session) payload
  with
  | Ok g -> (
      match Kg.Graph.to_list g with
      | [ q ] -> q
      | _ -> invalid_arg "script fact payload changed arity since parse")
  | Error _ -> invalid_arg "script fact payload stopped parsing since parse"

let engine_name = Engine.choice_name

let mode_name = function `Fresh -> "fresh" | `Incremental -> "incremental"

let run ?engine ?jobs ~session fmt (t : t) =
  let exception Halt of error in
  let fail (c : located) message =
    raise (Halt { path = t.path; line = c.line; column = c.column; message })
  in
  let out fmt_str = Format.fprintf fmt fmt_str in
  let exec (c : located) =
    match c.cmd with
    | Load arg ->
        let file =
          if Filename.is_relative arg then
            Filename.concat (Filename.dirname t.path) arg
          else arg
        in
        (match Session.load session file with
        | Ok () -> ()
        | Error e -> fail c (Session.error_message e));
        let facts =
          match Session.graph session with
          | Some g -> Kg.Graph.size g
          | None -> 0
        in
        out "loaded %s (%d facts)@." arg facts
    | Assert_ payload -> (
        let q = parse_fact ~session payload in
        match Session.assert_fact session q with
        | Ok _ -> out "asserted %s@." (Kg.Quad.to_string q)
        | Error e -> fail c (Session.error_message e))
    | Retract payload -> (
        let q = parse_fact ~session payload in
        match Session.retract session q with
        | Ok _ -> out "retracted %s@." (Kg.Quad.to_string q)
        | Error e -> fail c (Session.error_message e))
    | Rule payload -> (
        match Session.add_rules session payload with
        | Ok rules ->
            List.iter
              (fun (r : Logic.Rule.t) -> out "added rule %s@." r.Logic.Rule.name)
              rules
        | Error msg -> fail c msg)
    | Unrule name ->
        if Session.remove_rule session name then out "removed rule %s@." name
        else fail c (Printf.sprintf "no rule named %S" name)
    | Resolve mode -> (
        match Session.resolve ?engine ?jobs ~mode session with
        | Ok r ->
            let outcome =
              match Session.cache_outcome session with
              | Some o -> Engine.outcome_name o
              | None -> "none"
            in
            let res = r.Engine.resolution in
            out
              "resolved mode=%s cache=%s engine=%s kept=%d removed=%d \
               derived=%d conflicting=%d objective=%.3f@."
              (mode_name mode) outcome
              (engine_name r.Engine.stats.Engine.engine_used)
              res.Conflict.kept
              (List.length res.Conflict.removed)
              (List.length res.Conflict.derived)
              (List.length res.Conflict.conflicting)
              r.Engine.stats.Engine.objective
        | Error (Session.Rejected report) ->
            (* A rejection is a first-class transcript outcome, not a
               script failure: the run continues (and exits 0) so that
               "what does TeCoRe say to an ill-formed program" can be
               golden-tested. *)
            out "rejected:@.%a@." Translator.pp_report report
        | Error e -> fail c (Session.error_message e))
    | Diff -> (
        match (Session.graph session, Session.last_result session) with
        | Some g, Some r ->
            out "%a@." Diff.pp
              (Diff.diff g r.Engine.resolution.Conflict.consistent)
        | _, None | None, _ -> out "diff: no resolution yet@.")
  in
  match List.iter exec t.commands with
  | () -> Ok ()
  | exception Halt e -> Error e
