(** Interpretation of a MAP state as a conflict resolution.

    Given the atom store, the ground rule instances and a MAP assignment,
    this module produces what TeCoRe's result screen shows (Figure 8):
    the most probable conflict-free expanded KG, the removed (noisy)
    facts, the newly derived facts, and the conflict statistics. *)

type derived_fact = {
  atom : Logic.Atom.Ground.t;
  confidence : float;
      (** logistic of the total weight of firing rule instances that
          support the atom in the MAP state *)
  as_quad : Kg.Quad.t option;
      (** binary temporal atoms convert back to facts *)
}

type resolution = {
  consistent : Kg.Graph.t;
      (** the input graph minus removed facts, plus derived binary
          temporal facts — [G_inferred] of the paper *)
  removed : (Kg.Graph.id * Kg.Quad.t) list;
      (** evidence facts false in the MAP state *)
  derived : derived_fact list;
      (** hidden atoms true in the MAP state *)
  conflicting : Kg.Graph.id list;
      (** facts that participate in at least one violated hard-constraint
          instance under the evidence — the "conflicting statements"
          count of the statistics screen *)
  kept : int;
}

val interpret :
  graph:Kg.Graph.t ->
  store:Grounder.Atom_store.t ->
  instances:Grounder.Ground.Instance.t list ->
  assignment:bool array ->
  unit ->
  resolution

val apply_threshold : float -> resolution -> resolution
(** Drop derived facts whose confidence is below the threshold — the
    paper's "set a threshold value and remove derived facts below that".
    Removed derived facts are also taken out of [consistent]. *)

val pp_summary : Format.formatter -> resolution -> unit
(** The statistics panel: counts of kept / removed / derived /
    conflicting facts. *)
