(** Explanations: why a fact was removed, why a fact was derived.

    The result browser of Figure 8 lists conflicting statements; a curator
    then wants to know {e why} each one lost. An explanation names the
    constraint, the clash partners that survived, and the weight
    comparison that decided the outcome; for derived facts it lists the
    firing rule instances. *)

type removal = {
  fact : Kg.Graph.id;
  quad : Kg.Quad.t;
  clashes : clash list;
}

and clash = {
  constraint_name : string;
  winners : Kg.Quad.t list;
      (** the surviving facts of the violated instance *)
  winner_weight : float;
      (** minimum log-odds weight among the winners *)
  loser_weight : float;
      (** the removed fact's log-odds weight *)
}

type derivation = {
  atom : Logic.Atom.Ground.t;
  via : (string * Kg.Quad.t list) list;
      (** firing rule name with the supporting facts of each instance *)
}

val removals :
  store:Grounder.Atom_store.t ->
  instances:Grounder.Ground.Instance.t list ->
  assignment:bool array ->
  graph:Kg.Graph.t ->
  resolution:Conflict.resolution ->
  removal list
(** One entry per removed fact. A removal with no clashes means the fact
    lost on its own weight (confidence below 0.5) rather than through a
    constraint. *)

val derivations :
  store:Grounder.Atom_store.t ->
  instances:Grounder.Ground.Instance.t list ->
  assignment:bool array ->
  graph:Kg.Graph.t ->
  resolution:Conflict.resolution ->
  derivation list

val pp_removal : Format.formatter -> removal -> unit
val pp_derivation : Format.formatter -> derivation -> unit

val of_result :
  Kg.Graph.t -> Engine.result -> removal list * derivation list
(** Convenience over {!removals} and {!derivations} using the result's
    grounding artefacts. *)
