type t = {
  ns : Kg.Namespace.t;
  mutable kg : Kg.Graph.t option;
  mutable rule_set : Logic.Rule.t list;
  mutable result : Engine.result option;
  state : Engine.state;
  mutable delta_facts : Logic.Atom.Ground.t list;
  mutable rules_changed : bool;
}

type error =
  | Io_error of string
  | Parse_error of string
  | Rejected of Translator.report
  | Ground_timeout of Translator.report
  | No_graph
  | Absent_fact of string

let error_message = function
  | Io_error msg | Parse_error msg -> msg
  | Rejected report | Ground_timeout report ->
      Format.asprintf "%a" Translator.pp_report report
  | No_graph -> "no knowledge graph selected"
  | Absent_fact s -> Printf.sprintf "fact not in graph: %s" s

let create () =
  {
    ns = Kg.Namespace.create ();
    kg = None;
    rule_set = [];
    result = None;
    state = Engine.create_state ();
    delta_facts = [];
    rules_changed = false;
  }

let namespace t = t.ns

let load_graph t g =
  t.kg <- Some g;
  t.result <- None;
  (* A wholesale graph swap is not a delta; start the incremental state
     from scratch. *)
  Engine.invalidate t.state;
  t.delta_facts <- [];
  t.rules_changed <- false

let contains ~needle haystack =
  let nn = String.length needle and nh = String.length haystack in
  nn = 0
  ||
  let rec at i =
    i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1))
  in
  at 0

let load t path =
  match Obs.span "parse" (fun () -> Kg.Nquads.parse_file ~namespace:t.ns path) with
  | Ok g ->
      load_graph t g;
      Ok ()
  | Error e ->
      (* Compiler-style location: path:line[:column]: message. *)
      let loc =
        match e.Kg.Nquads.column with
        | Some c -> Printf.sprintf "%s:%d:%d" path e.Kg.Nquads.line c
        | None -> Printf.sprintf "%s:%d" path e.Kg.Nquads.line
      in
      Error (Parse_error (Printf.sprintf "%s: %s" loc e.Kg.Nquads.message))
  | exception Sys_error msg ->
      (* Most [Sys_error] messages already lead with the path; qualify
         the ones (e.g. from exotic failure modes) that do not, so the
         user always learns which file failed. *)
      let msg = if contains ~needle:path msg then msg else path ^ ": " ^ msg in
      Error (Io_error msg)

let load_file t path = Result.map_error error_message (load t path)

let load_string t text =
  match Obs.span "parse" (fun () -> Kg.Nquads.parse_string ~namespace:t.ns text) with
  | Ok g ->
      load_graph t g;
      Ok ()
  | Error e -> Error (Format.asprintf "%a" Kg.Nquads.pp_error e)

let graph t = t.kg

(* {1 Fact edits — the session's delta feed} *)

let push_delta t (q : Kg.Quad.t) =
  t.delta_facts <- Logic.Atom.Ground.of_quad q :: t.delta_facts

let assert_fact t (q : Kg.Quad.t) =
  match t.kg with
  | None -> Error No_graph
  | Some g ->
      let id = Kg.Graph.add g q in
      push_delta t q;
      t.result <- None;
      Ok id

let retract t (q : Kg.Quad.t) =
  match t.kg with
  | None -> Error No_graph
  | Some g -> (
      let live =
        List.filter
          (fun (_, q') -> Kg.Quad.same_statement q q')
          (Kg.Graph.by_predicate g q.Kg.Quad.predicate)
      in
      (* Duplicates are legal in a UTKG; retract the oldest matching
         fact, deterministically. *)
      match List.sort (fun (a, _) (b, _) -> compare a b) live with
      | [] -> Error (Absent_fact (Kg.Quad.to_string q))
      | (id, _) :: _ ->
          Kg.Graph.remove g id;
          push_delta t q;
          t.result <- None;
          Ok id)

let add_rules t src =
  match
    Obs.span "parse-rules" (fun () ->
        Rulelang.Parser.parse_string ~namespace:t.ns src)
  with
  | Ok rules ->
      t.rule_set <- t.rule_set @ rules;
      t.result <- None;
      t.rules_changed <- true;
      Ok rules
  | Error e -> Error (Format.asprintf "%a" Rulelang.Parser.pp_error e)

let remove_rule t name =
  let before = List.length t.rule_set in
  t.rule_set <-
    List.filter (fun (r : Logic.Rule.t) -> r.name <> name) t.rule_set;
  if List.length t.rule_set < before then begin
    t.result <- None;
    (* A removed rule's ground clauses must never be selectable again:
       flag the rule delta so the next resolve drops every cache. *)
    t.rules_changed <- true;
    true
  end
  else false

let rules t = t.rule_set

let clear_rules t =
  t.rule_set <- [];
  t.result <- None;
  t.rules_changed <- true

let complete_predicate t prefix =
  match t.kg with
  | None -> []
  | Some g ->
      (* Match against both the CURIE and the full IRI rendering. *)
      let lower = String.lowercase_ascii prefix in
      let starts_with name =
        let name = String.lowercase_ascii name in
        String.length lower <= String.length name
        && String.sub name 0 (String.length lower) = lower
      in
      List.filter_map
        (fun (p, _) ->
          let full = Kg.Term.to_string p in
          let short = Kg.Namespace.shrink t.ns full in
          if starts_with short || starts_with full then Some short else None)
        (Kg.Graph.predicates g)

(* {1 State dump — the snapshot body of the server's durability layer} *)

let dump_quad_line ns (q : Kg.Quad.t) =
  let term t =
    match t with
    | Kg.Term.Iri name -> Kg.Namespace.shrink ns name
    | Kg.Term.Flt f ->
        (* Keep the literal a float on reparse: "2" would come back as
           an Int term. *)
        let s = Prelude.Floatlit.to_lexeme f in
        if int_of_string_opt s <> None then s ^ "." else s
    | t -> Kg.Term.to_string t
  in
  let b = Buffer.create 64 in
  Buffer.add_string b "assert ";
  Buffer.add_string b (term q.Kg.Quad.subject);
  Buffer.add_char b ' ';
  Buffer.add_string b (term q.Kg.Quad.predicate);
  Buffer.add_char b ' ';
  Buffer.add_string b (term q.Kg.Quad.object_);
  Buffer.add_char b ' ';
  Buffer.add_string b (Kg.Interval.to_string q.Kg.Quad.time);
  if q.Kg.Quad.confidence < 1.0 then begin
    Buffer.add_char b ' ';
    Buffer.add_string b (Prelude.Floatlit.to_lexeme q.Kg.Quad.confidence)
  end;
  Buffer.add_string b " .";
  Buffer.contents b

let dump_state t =
  let prefixes =
    List.map
      (fun (p, iri) -> Printf.sprintf "@prefix %s: <%s> ." p iri)
      (Kg.Namespace.bindings t.ns)
  in
  let opened = match t.kg with Some _ -> [ "open" ] | None -> [] in
  let rules =
    (* Shrink IRIs to prefixed names so each printed rule re-parses
       (the @prefix lines above re-establish the bindings first). *)
    List.map
      (Rulelang.Printer.rule_to_string ~shrink:(Kg.Namespace.shrink t.ns))
      t.rule_set
  in
  let facts =
    match t.kg with
    | None -> []
    | Some g ->
        (* Insertion order: replay re-adds facts oldest-first, so the
           "retract the oldest matching fact" tie-break keeps behaving
           identically after a snapshot round-trip. *)
        List.map (dump_quad_line t.ns) (Kg.Graph.to_list g)
  in
  prefixes @ opened @ rules @ facts

let analyse t =
  match t.kg with
  | None -> Error "no knowledge graph selected"
  | Some g -> Ok (Translator.analyse g t.rule_set)

let resolve ?engine ?jobs ?threshold ?deadline ?on_timeout ?(mode = `Fresh) t =
  match t.kg with
  | None -> Error No_graph
  | Some g -> (
      let delta =
        {
          Engine.facts = List.rev t.delta_facts;
          rules_changed = t.rules_changed;
        }
      in
      match
        Engine.resolve ?engine ?jobs ?threshold ?deadline ?on_timeout ~mode
          ~state:t.state ~delta g t.rule_set
      with
      | result ->
          t.result <- Some result;
          t.delta_facts <- [];
          t.rules_changed <- false;
          Ok result
      | exception Engine.Rejected report -> Error (Rejected report)
      | exception Engine.Ground_timed_out report ->
          Error (Ground_timeout report))

let cache_outcome t = Engine.last_outcome t.state

let pending_edits t = List.length t.delta_facts

let rules_dirty t = t.rules_changed

let engine_state t = t.state

let run ?engine ?jobs ?threshold t =
  Result.map_error error_message (resolve ?engine ?jobs ?threshold t)

let last_result t = t.result

let consistent_statements t =
  match t.result with
  | None -> []
  | Some r -> Kg.Graph.to_list r.Engine.resolution.Conflict.consistent

let conflicting_statements t =
  match t.result with
  | None -> []
  | Some r -> List.map snd r.Engine.resolution.Conflict.removed

let statistics t =
  match t.result with
  | None -> "no run yet"
  | Some r -> Format.asprintf "%a" Engine.pp_result r
