open Logic

(* Alchemy-compatible identifiers: letters, digits and underscores;
   constants start upper-case, variables lower-case. *)
let sanitize s =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
      then c
      else '_')
    s

let constant term =
  let s = sanitize (Kg.Term.to_string term) in
  if s = "" then "C"
  else if s.[0] >= 'a' && s.[0] <= 'z' then String.capitalize_ascii s
  else if s.[0] >= '0' && s.[0] <= '9' then "C" ^ s
  else s

let variable v = String.lowercase_ascii (sanitize v)

let mln_term = function
  | Lterm.Var v -> variable v
  | Lterm.Const c -> constant c

(* Temporal arguments are flattened to two integer arguments (the
   interval endpoints); computed intervals keep symbolic names and emit a
   comment, since Alchemy has no interval algebra. *)
let rec time_args = function
  | Lterm.Tvar v -> (variable v ^ "_lo", variable v ^ "_hi")
  | Lterm.Tconst i ->
      (string_of_int (Kg.Interval.lo i), string_of_int (Kg.Interval.hi i))
  | Lterm.Tinter (a, b) | Lterm.Thull (a, b) ->
      let alo, _ = time_args a and _, bhi = time_args b in
      (alo, bhi)

let mln_atom (a : Atom.t) =
  let args = List.map mln_term a.args in
  let args =
    match a.time with
    | None -> args
    | Some tt ->
        let lo, hi = time_args tt in
        args @ [ lo; hi ]
  in
  Printf.sprintf "%s(%s)" (sanitize a.predicate) (String.concat ", " args)

let rec mln_arith = function
  | Cond.Num n -> string_of_int n
  | Cond.Start_of tt -> fst (time_args tt)
  | Cond.End_of tt -> snd (time_args tt)
  | Cond.Length_of tt ->
      let lo, hi = time_args tt in
      Printf.sprintf "(%s - %s + 1)" hi lo
  | Cond.Value_of t -> mln_term t
  | Cond.Add (a, b) -> Printf.sprintf "(%s + %s)" (mln_arith a) (mln_arith b)
  | Cond.Sub (a, b) -> Printf.sprintf "(%s - %s)" (mln_arith a) (mln_arith b)

let cmp_symbol = function
  | Cond.Lt -> "<"
  | Cond.Le -> "<="
  | Cond.Gt -> ">"
  | Cond.Ge -> ">="
  | Cond.Eq_cmp -> "="
  | Cond.Ne_cmp -> "!="

(* Allen relations over flattened endpoints become endpoint arithmetic,
   the numerical-constraints encoding of the ECAI-2016 extension. *)
let mln_allen set a b =
  let alo, ahi = time_args a and blo, bhi = time_args b in
  if Kg.Allen.Set.equal set Kg.Allen.Set.disjoint then
    Printf.sprintf "(%s + 1 < %s v %s + 1 < %s v %s + 1 = %s v %s + 1 = %s)"
      ahi blo bhi alo ahi blo bhi alo
  else if Kg.Allen.Set.equal set Kg.Allen.Set.intersects then
    Printf.sprintf "(%s <= %s ^ %s <= %s)" alo bhi blo ahi
  else if Kg.Allen.Set.equal set (Kg.Allen.Set.singleton Kg.Allen.Before) then
    Printf.sprintf "(%s + 1 < %s)" ahi blo
  else
    (* Remaining relations: conjunction of endpoint comparisons per basic
       relation, joined disjunctively. *)
    let basic r =
      match r with
      | Kg.Allen.Before -> Printf.sprintf "(%s + 1 < %s)" ahi blo
      | Kg.Allen.Meets -> Printf.sprintf "(%s + 1 = %s)" ahi blo
      | Kg.Allen.Overlaps ->
          Printf.sprintf "(%s < %s ^ %s <= %s ^ %s < %s)" alo blo blo ahi ahi bhi
      | Kg.Allen.Finished_by -> Printf.sprintf "(%s < %s ^ %s = %s)" alo blo ahi bhi
      | Kg.Allen.Contains ->
          Printf.sprintf "(%s < %s ^ %s < %s)" alo blo bhi ahi
      | Kg.Allen.Starts -> Printf.sprintf "(%s = %s ^ %s < %s)" alo blo ahi bhi
      | Kg.Allen.Equals -> Printf.sprintf "(%s = %s ^ %s = %s)" alo blo ahi bhi
      | Kg.Allen.Started_by -> Printf.sprintf "(%s = %s ^ %s < %s)" alo blo bhi ahi
      | Kg.Allen.During -> Printf.sprintf "(%s < %s ^ %s < %s)" blo alo ahi bhi
      | Kg.Allen.Finishes -> Printf.sprintf "(%s < %s ^ %s = %s)" blo alo ahi bhi
      | Kg.Allen.Overlapped_by ->
          Printf.sprintf "(%s < %s ^ %s <= %s ^ %s < %s)" blo alo alo bhi bhi ahi
      | Kg.Allen.Met_by -> Printf.sprintf "(%s + 1 = %s)" bhi alo
      | Kg.Allen.After -> Printf.sprintf "(%s + 1 < %s)" bhi alo
    in
    "("
    ^ String.concat " v " (List.map basic (Kg.Allen.Set.to_list set))
    ^ ")"

let mln_cond = function
  | Cond.Allen (set, a, b) -> mln_allen set a b
  | Cond.Cmp (op, a, b) ->
      Printf.sprintf "%s %s %s" (mln_arith a) (cmp_symbol op) (mln_arith b)
  | Cond.Eq (a, b) -> Printf.sprintf "%s = %s" (mln_term a) (mln_term b)
  | Cond.Neq (a, b) -> Printf.sprintf "%s != %s" (mln_term a) (mln_term b)

let mln_rule (r : Rule.t) =
  let body =
    List.map mln_atom r.body @ List.map mln_cond r.conditions
  in
  let head =
    match r.head with
    | Rule.Infer a -> mln_atom a
    | Rule.Require c -> mln_cond c
    | Rule.Bottom -> "FALSE"
  in
  let formula = String.concat " ^ " body ^ " => " ^ head in
  match r.weight with
  | None -> Printf.sprintf "// %s\n%s." r.name formula
  | Some w -> Printf.sprintf "// %s\n%g %s" r.name w formula

(* Predicate declarations inferred from the rules. *)
let declarations rules =
  let seen = Hashtbl.create 16 in
  let decls = ref [] in
  let visit (a : Atom.t) =
    let name = sanitize a.predicate in
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      let object_args =
        List.mapi (fun i _ -> Printf.sprintf "arg%d" i) a.args
      in
      let args =
        object_args @ (if a.time = None then [] else [ "lo"; "hi" ])
      in
      decls := Printf.sprintf "%s(%s)" name (String.concat ", " args) :: !decls
    end
  in
  List.iter
    (fun (r : Rule.t) ->
      List.iter visit r.body;
      match r.head with Rule.Infer a -> visit a | _ -> ())
    rules;
  List.rev !decls

let to_mln rules =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "// TeCoRe translation: MLN with numerical constraints\n";
  Buffer.add_string buf "// (temporal arguments flattened to interval endpoints)\n\n";
  List.iter
    (fun d -> Buffer.add_string buf (d ^ "\n"))
    (declarations rules);
  Buffer.add_char buf '\n';
  List.iter (fun r -> Buffer.add_string buf (mln_rule r ^ "\n\n")) rules;
  Buffer.contents buf

let to_mln_evidence graph =
  let buf = Buffer.create 4096 in
  Kg.Graph.iter
    (fun _ q ->
      let atom =
        Printf.sprintf "%s(%s, %s, %d, %d)"
          (sanitize (Kg.Term.to_string q.Kg.Quad.predicate))
          (constant q.Kg.Quad.subject)
          (constant q.Kg.Quad.object_)
          (Kg.Interval.lo q.Kg.Quad.time)
          (Kg.Interval.hi q.Kg.Quad.time)
      in
      if Kg.Quad.is_certain q then
        Buffer.add_string buf (atom ^ "\n")
      else
        Buffer.add_string buf
          (Printf.sprintf "%g %s\n" q.Kg.Quad.confidence atom))
    graph;
  Buffer.contents buf

let psl_rule (r : Rule.t) =
  let body =
    List.map mln_atom r.body @ List.map mln_cond r.conditions
  in
  let head =
    match r.head with
    | Rule.Infer a -> mln_atom a
    | Rule.Require c -> mln_cond c
    | Rule.Bottom -> "~( " ^ String.concat " & " (List.map mln_atom r.body) ^ " )"
  in
  let arrow = String.concat " & " body ^ " -> " ^ head in
  match r.weight with
  | None -> Printf.sprintf "// %s\n%s ." r.name arrow
  | Some w -> Printf.sprintf "// %s\n%g: %s" r.name w arrow

let to_psl rules =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "// TeCoRe translation: nPSL program (linear hinges)\n\n";
  List.iter (fun r -> Buffer.add_string buf (psl_rule r ^ "\n\n")) rules;
  Buffer.contents buf

let save ~path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc
