(** Diffing two UTKGs.

    Debugging sessions compare graphs constantly: the input against the
    resolved output, two resolutions under different constraint sets, a
    re-extraction against the previous crawl. A diff reports statements
    only in the left graph, only in the right, and statements present in
    both whose confidence changed. Statements are compared by triple and
    interval (the identity {!Kg.Quad.same_statement} uses). *)

type t = {
  only_left : Kg.Quad.t list;
  only_right : Kg.Quad.t list;
  confidence_changed : (Kg.Quad.t * Kg.Quad.t) list;
      (** (left version, right version) of statements in both *)
  unchanged : int;
}

val diff : Kg.Graph.t -> Kg.Graph.t -> t

val is_empty : t -> bool
(** No additions, removals or confidence changes. *)

val pp : Format.formatter -> t -> unit
(** Unified-diff-flavoured rendering: [-] left-only, [+] right-only,
    [~] confidence changes. *)
