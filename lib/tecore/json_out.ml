let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = Printf.sprintf "\"%s\"" (escape s)

let obj fields =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" k v) fields)
  ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"

let float_value f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%g" f

let term ns t =
  match t with
  | Kg.Term.Iri name -> (
      match ns with
      | Some ns -> str (Kg.Namespace.shrink ns name)
      | None -> str name)
  | Kg.Term.Str s -> str s
  | Kg.Term.Int n -> string_of_int n
  | Kg.Term.Flt f -> float_value f

let of_quad ?namespace (q : Kg.Quad.t) =
  obj
    [
      ("subject", term namespace q.subject);
      ("predicate", term namespace q.predicate);
      ("object", term namespace q.object_);
      ("from", string_of_int (Kg.Interval.lo q.time));
      ("to", string_of_int (Kg.Interval.hi q.time));
      ("confidence", float_value q.confidence);
    ]

let of_derived ?namespace (d : Conflict.derived_fact) =
  let atom = d.atom in
  obj
    (("predicate", str atom.Logic.Atom.Ground.predicate)
     :: ("args", arr (List.map (term namespace) atom.Logic.Atom.Ground.args))
     :: ("confidence", float_value d.confidence)
     ::
     (match atom.Logic.Atom.Ground.time with
     | Some i ->
         [
           ("from", string_of_int (Kg.Interval.lo i));
           ("to", string_of_int (Kg.Interval.hi i));
         ]
     | None -> []))

let of_resolution ?namespace (r : Conflict.resolution) =
  obj
    [
      ("kept", string_of_int r.kept);
      ( "removed",
        arr (List.map (fun (_, q) -> of_quad ?namespace q) r.removed) );
      ("derived", arr (List.map (of_derived ?namespace) r.derived));
      ("conflicting_ids", arr (List.map string_of_int r.conflicting));
      ( "consistent",
        arr
          (List.map (of_quad ?namespace) (Kg.Graph.to_list r.consistent)) );
    ]

let of_result ?namespace ?deadline ?obs (result : Engine.result) =
  let stats = result.stats in
  (* The "deadline" object is emitted only for budget-limited runs so
     unbudgeted invocations produce byte-identical payloads to earlier
     releases. *)
  let deadline_fields =
    match deadline with
    | Some d when Prelude.Deadline.is_finite d ->
        [
          ( "deadline",
            obj
              [
                ( "status",
                  str (Prelude.Deadline.status_name stats.Engine.status) );
                ( "expired",
                  if stats.Engine.status = Prelude.Deadline.Completed then
                    "false"
                  else "true" );
                ("budget_ms", float_value (Prelude.Deadline.budget_ms d));
                ( "slack_ms",
                  float_value (Prelude.Deadline.remaining_ms d) );
              ] );
        ]
    | Some _ | None -> []
  in
  obj
    ([
       ( "engine",
         str
           (match stats.Engine.engine_used with
           | Translator.Mln_engine -> "mln"
           | Translator.Psl_engine -> "psl") );
       ( "stats",
         obj
           [
             ("atoms", string_of_int stats.Engine.atoms);
             ("ground_ms", float_value stats.Engine.ground_ms);
             ("solve_ms", float_value stats.Engine.solve_ms);
             ("total_ms", float_value stats.Engine.total_ms);
             ("hard_violations", string_of_int stats.Engine.hard_violations);
           ] );
       ("resolution", of_resolution ?namespace result.resolution);
     ]
    @ deadline_fields
    @
    match obs with
    | None -> []
    | Some report -> [ ("obs", Obs.Json.to_string (Obs.Report.to_json report)) ])
