type severity = Info | Warning | Error

type note = {
  severity : severity;
  rule : string option;
  message : string;
}

type engine_choice = Mln_engine | Psl_engine

type report = {
  notes : note list;
  ok : bool;
  recommended : engine_choice;
  estimated_atoms : int;
}

let mln_size_limit = 20_000

let analyse graph rules =
  let notes = ref [] in
  let note severity rule message = notes := { severity; rule; message } :: !notes in
  let predicates = List.map (fun (p, _) -> Kg.Term.to_string p) (Kg.Graph.predicates graph) in
  let head_predicates =
    List.filter_map
      (fun (r : Logic.Rule.t) ->
        match r.head with
        | Logic.Rule.Infer a -> Some a.predicate
        | _ -> None)
      rules
  in
  (* Rule names key weight learning, removal and explanations — a
     duplicate silently corrupts all three, so it is a hard error. *)
  let seen_names = Hashtbl.create 8 in
  List.iter
    (fun (r : Logic.Rule.t) ->
      if Hashtbl.mem seen_names r.Logic.Rule.name then
        note Error (Some r.Logic.Rule.name)
          "duplicate rule name: weights, removals and explanations are \
           keyed by name"
      else Hashtbl.add seen_names r.Logic.Rule.name ())
    rules;
  List.iter
    (fun (r : Logic.Rule.t) ->
      (match Logic.Rule.check_safety r with
      | Ok () -> ()
      | Error msg -> note Error (Some r.name) msg);
      List.iter
        (fun (a : Logic.Atom.t) ->
          if
            (not (List.mem a.predicate predicates))
            && not (List.mem a.predicate head_predicates)
          then
            note Warning (Some r.name)
              (Printf.sprintf
                 "predicate %s does not occur in the selected KG" a.predicate))
        r.body;
      if (not (Logic.Rule.is_inference r)) && r.weight <> None then
        note Info (Some r.name)
          "soft constraint: the PSL path approximates its penalty by the \
           Lukasiewicz distance to satisfaction";
      match r.head with
      | Logic.Rule.Infer a when List.length a.args > 2 ->
          note Info (Some r.name)
            "non-binary head atoms are kept out of the expanded KG (they \
             have no quad form)"
      | _ -> ())
    rules;
  let estimated_atoms = Kg.Graph.size graph in
  let recommended =
    if estimated_atoms > mln_size_limit then Psl_engine else Mln_engine
  in
  if recommended = Psl_engine then
    note Info None
      (Printf.sprintf
         "%d facts exceed the MLN comfort zone (%d); the scalable nPSL \
          engine is recommended"
         estimated_atoms mln_size_limit);
  let notes = List.rev !notes in
  {
    notes;
    ok = not (List.exists (fun n -> n.severity = Error) notes);
    recommended;
    estimated_atoms;
  }

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let pp_report ppf r =
  Format.fprintf ppf "@[<v>translator: %s, %d facts, recommended engine: %s"
    (if r.ok then "ok" else "rejected")
    r.estimated_atoms
    (match r.recommended with
    | Mln_engine -> "MLN (nRockIt path)"
    | Psl_engine -> "nPSL");
  List.iter
    (fun n ->
      Format.fprintf ppf "@ [%s]%s %s" (severity_name n.severity)
        (match n.rule with Some name -> " " ^ name ^ ":" | None -> "")
        n.message)
    r.notes;
  Format.fprintf ppf "@]"
