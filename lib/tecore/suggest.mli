(** Automatic constraint suggestion.

    The demo's discussion asks for "automatic derivation or suggestion of
    constraints and inference rules"; this module mines candidate
    temporal constraints from the selected UTKG itself:

    - {b disjointness}: for a predicate [p], if almost every pair of
      same-subject facts with distinct objects is temporally disjoint,
      suggest [p(x,y)@t ∧ p(x,z)@t2 ∧ y ≠ z → disjoint(t, t2)] — the
      shape of the paper's c2;
    - {b object functionality}: if same-subject facts with intersecting
      intervals almost always agree on the object, suggest
      [p(x,y)@t ∧ p(x,z)@t2 ∧ intersects(t,t2) → y = z] — the shape of c3;
    - {b precedence}: for a predicate pair (p, q) co-occurring on many
      subjects, if [p]'s interval (almost) always starts before [q]'s,
      suggest [p(..)@t ∧ q(..)@t2 → start(t) <= start(t2)] — the shape
      of c1.

    A suggestion whose support ratio is 1.0 is proposed as a hard
    constraint; otherwise it gets the log-odds of its ratio as a soft
    weight. Suggestions are ordinary {!Logic.Rule.t} values, directly
    runnable by the engine. *)

type kind =
  | Disjointness
  | Functionality
  | Precedence of string  (** the second predicate *)

type suggestion = {
  rule : Logic.Rule.t;
  kind : kind;
  predicate : string;
  support : int;        (** fact pairs examined *)
  violations : int;     (** pairs contradicting the candidate *)
  ratio : float;        (** (support - violations) / support *)
}

type config = {
  min_support : int;    (** pairs needed before suggesting (default 20) *)
  min_ratio : float;    (** acceptance threshold (default 0.9) *)
  max_pairs_per_subject : int;
      (** cap on pairs per subject to keep mining linear-ish (default 50) *)
}

val default_config : config

val mine : ?config:config -> Kg.Graph.t -> suggestion list
(** Candidates sorted by descending ratio, then support. *)

val pp_suggestion : Format.formatter -> suggestion -> unit
