module Deadline = Prelude.Deadline

type engine =
  | Mln of Mln.Map_inference.options
  | Psl of Psl.Npsl.options
  | Auto

type run_stats = {
  engine_used : Translator.engine_choice;
  atoms : int;
  ground_ms : float;
  solve_ms : float;
  total_ms : float;
  hard_violations : int;
  status : Deadline.status;
}

type raw = {
  store : Grounder.Atom_store.t;
  instances : Grounder.Ground.Instance.t list;
  assignment : bool array;
}

type result = {
  resolution : Conflict.resolution;
  report : Translator.report;
  stats : run_stats;
  raw : raw;
}

exception Rejected of Translator.report

exception Ground_timed_out of Translator.report

(* Append the structured partial-grounding note to the translator report
   carried by {!Ground_timed_out}: how far the closure got, and why the
   partial state cannot be used. *)
let ground_timeout_report (report : Translator.report) ~atoms ~rounds =
  let note =
    {
      Translator.severity = Translator.Error;
      rule = None;
      message =
        Printf.sprintf
          "grounding timed out after %d closure round%s (%d atoms \
           interned); a partially saturated store would silently drop \
           constraints, so no best-effort answer exists for this stage \
           — raise --timeout or use --on-timeout best-effort to budget \
           only the solver"
          rounds
          (if rounds = 1 then "" else "s")
          atoms;
    }
  in
  { report with Translator.notes = report.Translator.notes @ [ note ]; ok = false }

let resolve ?(engine = Auto) ?jobs ?threshold ?(deadline = Deadline.none)
    ?(on_timeout = `Best_effort) graph rules =
  Obs.span "resolve" @@ fun () ->
  let report = Obs.span "translate" (fun () -> Translator.analyse graph rules) in
  if not report.Translator.ok then raise (Rejected report);
  (* Under [`Fail] grounding polls the real deadline and the whole run is
     rejected on expiry (raising {!Ground_timed_out}); under
     [`Best_effort] grounding must complete — a partial grounding has no
     sound interpretation — and the budget disciplines only the solver,
     which can be cut anywhere and still return its best incumbent. *)
  let ground_deadline =
    match on_timeout with `Fail -> deadline | `Best_effort -> Deadline.none
  in
  let engine =
    match engine with
    | Auto -> (
        match report.Translator.recommended with
        | Translator.Mln_engine -> Mln Mln.Map_inference.default_options
        | Translator.Psl_engine -> Psl Psl.Npsl.default_options)
    | e -> e
  in
  let engine =
    if not (Deadline.is_finite deadline) then engine
    else
      match engine with
      | Mln options ->
          Mln { options with Mln.Map_inference.deadline; ground_deadline }
      | Psl options -> Psl { options with Psl.Npsl.deadline; ground_deadline }
      | Auto -> assert false
  in
  (* [jobs] defaults to the environment ([TECORE_JOBS], else 1). A pool
     is created — and injected into the engine options — only when more
     than one job is requested, so explicitly configured option pools
     survive the default. *)
  let jobs =
    match jobs with Some j -> j | None -> Prelude.Pool.default_jobs ()
  in
  let pool = if jobs = 1 then None else Some (Prelude.Pool.create ~jobs) in
  let engine =
    match (engine, pool) with
    | Mln options, Some pool -> Mln { options with Mln.Map_inference.pool }
    | Psl options, Some pool -> Psl { options with Psl.Npsl.pool }
    | e, _ -> e
  in
  Obs.event "engine.selected"
    [
      ( "engine",
        Obs.Events.Str
          (match engine with
          | Mln _ -> "mln"
          | Psl _ -> "psl"
          | Auto -> "auto") );
      ("jobs", Obs.Events.Int jobs);
    ];
  let run () =
    match engine with
    | Auto -> assert false
    | Mln options ->
        let out = Mln.Map_inference.run ~options graph rules in
        ( Obs.span "interpret" (fun () ->
              Conflict.interpret ~graph ~store:out.Mln.Map_inference.store
                ~instances:out.Mln.Map_inference.instances
                ~assignment:out.Mln.Map_inference.assignment ()),
          {
            store = out.Mln.Map_inference.store;
            instances = out.Mln.Map_inference.instances;
            assignment = out.Mln.Map_inference.assignment;
          },
          Translator.Mln_engine,
          out.Mln.Map_inference.stats.Mln.Map_inference.atoms,
          out.Mln.Map_inference.stats.Mln.Map_inference.ground_ms,
          out.Mln.Map_inference.stats.Mln.Map_inference.solve_ms,
          out.Mln.Map_inference.stats.Mln.Map_inference.hard_violations,
          out.Mln.Map_inference.stats.Mln.Map_inference.status )
    | Psl options ->
        let out = Psl.Npsl.run ~options graph rules in
        ( Obs.span "interpret" (fun () ->
              Conflict.interpret ~graph ~store:out.Psl.Npsl.store
                ~instances:out.Psl.Npsl.instances
                ~assignment:out.Psl.Npsl.assignment ()),
          {
            store = out.Psl.Npsl.store;
            instances = out.Psl.Npsl.instances;
            assignment = out.Psl.Npsl.assignment;
          },
          Translator.Psl_engine,
          out.Psl.Npsl.stats.Psl.Npsl.atoms,
          out.Psl.Npsl.stats.Psl.Npsl.ground_ms,
          out.Psl.Npsl.stats.Psl.Npsl.solve_ms,
          out.Psl.Npsl.stats.Psl.Npsl.rounding.Psl.Rounding.unrepaired,
          out.Psl.Npsl.stats.Psl.Npsl.status )
  in
  (* Pool scheduling counters must be captured on every exit — a
     rejected grounding or a crashed solver used the pool too, and the
     Obs report of a failed run is exactly where those numbers matter. *)
  let emit_pool_stats () =
    match pool with
    | None -> ()
    | Some pool ->
        let s = Prelude.Pool.stats pool in
        Obs.count ~n:s.Prelude.Pool.calls "pool.calls";
        Obs.count ~n:s.Prelude.Pool.tasks "pool.tasks";
        Obs.add "pool.busy_ms" s.Prelude.Pool.busy_ms;
        Obs.add "pool.wall_ms" s.Prelude.Pool.wall_ms;
        if s.Prelude.Pool.wall_ms > 0.0 then
          Obs.gauge "pool.speedup"
            (s.Prelude.Pool.busy_ms /. s.Prelude.Pool.wall_ms)
  in
  let ( (resolution, raw, engine_used, atoms, ground_ms, solve_ms,
         hard_violations, status),
        total_ms ) =
    Fun.protect ~finally:emit_pool_stats (fun () ->
        try Prelude.Timing.time run
        with Grounder.Ground.Timed_out { atoms; rounds } ->
          Obs.event ~level:Obs.Events.Error "ground.timed_out"
            [
              ("atoms", Obs.Events.Int atoms);
              ("rounds", Obs.Events.Int rounds);
            ];
          if Deadline.is_finite deadline then begin
            Obs.count "deadline.expired";
            Obs.gauge "deadline.budget_ms" (Deadline.budget_ms deadline)
          end;
          raise (Ground_timed_out (ground_timeout_report report ~atoms ~rounds)))
  in
  (* Deadline telemetry is emitted only for finite budgets so that runs
     without [--timeout] produce byte-identical reports to earlier
     releases. *)
  if Deadline.is_finite deadline then begin
    if status <> Deadline.Completed then
      Obs.event ~level:Obs.Events.Warn "deadline.expired"
        [
          ("budget_ms", Obs.Events.Float (Deadline.budget_ms deadline));
          ("status", Obs.Events.Str (Format.asprintf "%a" Deadline.pp_status status));
        ];
    Obs.count ~n:(if status = Deadline.Completed then 0 else 1)
      "deadline.expired";
    Obs.gauge "deadline.budget_ms" (Deadline.budget_ms deadline);
    Obs.gauge "deadline.slack_ms" (Deadline.remaining_ms deadline)
  end;
  let resolution =
    match threshold with
    | None -> resolution
    | Some t -> Conflict.apply_threshold t resolution
  in
  {
    resolution;
    report;
    stats =
      {
        engine_used;
        atoms;
        ground_ms;
        solve_ms;
        total_ms;
        hard_violations;
        status;
      };
    raw;
  }

let pp_result ppf r =
  Format.fprintf ppf "@[<v>engine: %s@ %a@ runtime: %.1f ms (ground %.1f, solve %.1f)@]"
    (match r.stats.engine_used with
    | Translator.Mln_engine -> "MLN (nRockIt path)"
    | Translator.Psl_engine -> "nPSL")
    Conflict.pp_summary r.resolution r.stats.total_ms r.stats.ground_ms
    r.stats.solve_ms;
  (* Printed only for budget-limited runs: with no deadline the status
     is always [Completed] and the output stays identical to earlier
     releases. *)
  if r.stats.status <> Deadline.Completed then
    Format.fprintf ppf "@.status: %a (best-effort result)" Deadline.pp_status
      r.stats.status
