module Deadline = Prelude.Deadline

type engine =
  | Mln of Mln.Map_inference.options
  | Psl of Psl.Npsl.options
  | Auto

type run_stats = {
  engine_used : Translator.engine_choice;
  atoms : int;
  ground_ms : float;
  solve_ms : float;
  total_ms : float;
  hard_violations : int;
  objective : float;
  status : Deadline.status;
}

type raw = {
  store : Grounder.Atom_store.t;
  instances : Grounder.Ground.Instance.t list;
  assignment : bool array;
}

type result = {
  resolution : Conflict.resolution;
  report : Translator.report;
  stats : run_stats;
  raw : raw;
}

exception Rejected of Translator.report

exception Ground_timed_out of Translator.report

(* ------------------------------------------------------------------ *)
(* Incremental state                                                   *)
(* ------------------------------------------------------------------ *)

type delta = {
  facts : Logic.Atom.Ground.t list;
      (** ground atoms of the facts asserted or retracted since the
          last resolve (θ of each edited quad) *)
  rules_changed : bool;
}

let empty_delta = { facts = []; rules_changed = false }

type cache_outcome =
  | Hit          (** empty delta: previous result returned as-is *)
  | Replay       (** delta grounding replayed, solver caches consulted *)
  | Miss         (** no usable state yet: fresh resolve, state recorded *)
  | Invalidate   (** rules or options changed: caches dropped, fresh *)
  | Bypass       (** finite deadline: incremental machinery skipped *)
  | Fallback     (** replay failed mid-flight: fresh resolve instead *)
  | Fresh_run    (** caller asked for [`Fresh]; state still recorded *)

let choice_name = function
  | Translator.Mln_engine -> "mln"
  | Translator.Psl_engine -> "psl"

let outcome_name = function
  | Hit -> "hit"
  | Replay -> "replay"
  | Miss -> "miss"
  | Invalidate -> "invalidate"
  | Bypass -> "bypass"
  | Fallback -> "fallback"
  | Fresh_run -> "fresh"

(* The option fields that influence the result (pools and deadlines are
   excluded: job count never changes a result, and finite deadlines
   bypass the state path entirely). A state only replays against the
   exact configuration that produced it. *)
type fingerprint =
  | Fp_mln of
      Mln.Map_inference.solver
      * bool
      * Mln.Network.config
      * int
      * int
      * int
      * int list
      * float option
  | Fp_psl of Psl.Hlmrf.config * float * int * float * float * float option

type state = {
  mutable snapshot : Grounder.Ground.snapshot option;
  mutable fp : fingerprint option;
  mutable last : result option;
  mln_cache : Mln.Decompose.cache;
  psl_cache : Psl.Decompose.cache;
  mutable outcome : cache_outcome option;
}

let create_state () =
  {
    snapshot = None;
    fp = None;
    last = None;
    mln_cache = Mln.Decompose.create_cache ();
    psl_cache = Psl.Decompose.create_cache ();
    outcome = None;
  }

let invalidate st =
  st.snapshot <- None;
  st.fp <- None;
  st.last <- None;
  Mln.Decompose.clear_cache st.mln_cache;
  Psl.Decompose.clear_cache st.psl_cache

let last_outcome st = st.outcome

type cache_stats = {
  solve_entries : int;
  solve_hits : int;
  solve_misses : int;
}

let cache_stats st =
  let m = Mln.Decompose.cache_stats st.mln_cache in
  let p = Psl.Decompose.cache_stats st.psl_cache in
  {
    solve_entries = m.Mln.Decompose.entries + p.Psl.Decompose.entries;
    solve_hits = m.Mln.Decompose.hits + p.Psl.Decompose.hits;
    solve_misses = m.Mln.Decompose.misses + p.Psl.Decompose.misses;
  }

let fingerprint_of engine threshold =
  match engine with
  | Mln (o : Mln.Map_inference.options) ->
      Fp_mln
        ( o.Mln.Map_inference.solver,
          o.Mln.Map_inference.use_cpi,
          o.Mln.Map_inference.network_config,
          o.Mln.Map_inference.seed,
          o.Mln.Map_inference.max_flips,
          o.Mln.Map_inference.restarts,
          o.Mln.Map_inference.portfolio,
          threshold )
  | Psl (o : Psl.Npsl.options) ->
      Fp_psl
        ( o.Psl.Npsl.config,
          o.Psl.Npsl.rho,
          o.Psl.Npsl.max_iters,
          o.Psl.Npsl.tol,
          o.Psl.Npsl.threshold,
          threshold )
  | Auto -> assert false

(* Append the structured partial-grounding note to the translator report
   carried by {!Ground_timed_out}: how far the closure got, and why the
   partial state cannot be used. *)
let ground_timeout_report (report : Translator.report) ~atoms ~rounds =
  let note =
    {
      Translator.severity = Translator.Error;
      rule = None;
      message =
        Printf.sprintf
          "grounding timed out after %d closure round%s (%d atoms \
           interned); a partially saturated store would silently drop \
           constraints, so no best-effort answer exists for this stage \
           — raise --timeout or use --on-timeout best-effort to budget \
           only the solver"
          rounds
          (if rounds = 1 then "" else "s")
          atoms;
    }
  in
  { report with Translator.notes = report.Translator.notes @ [ note ]; ok = false }

let resolve ?(engine = Auto) ?jobs ?threshold ?(deadline = Deadline.none)
    ?(on_timeout = `Best_effort) ?(mode = `Fresh) ?state ?delta graph rules =
  Obs.span "resolve" @@ fun () ->
  let report = Obs.span "translate" (fun () -> Translator.analyse graph rules) in
  if not report.Translator.ok then raise (Rejected report);
  (* Under [`Fail] grounding polls the real deadline and the whole run is
     rejected on expiry (raising {!Ground_timed_out}); under
     [`Best_effort] grounding must complete — a partial grounding has no
     sound interpretation — and the budget disciplines only the solver,
     which can be cut anywhere and still return its best incumbent. *)
  let ground_deadline =
    match on_timeout with `Fail -> deadline | `Best_effort -> Deadline.none
  in
  let engine =
    match engine with
    | Auto -> (
        match report.Translator.recommended with
        | Translator.Mln_engine -> Mln Mln.Map_inference.default_options
        | Translator.Psl_engine -> Psl Psl.Npsl.default_options)
    | e -> e
  in
  let engine =
    if not (Deadline.is_finite deadline) then engine
    else
      match engine with
      | Mln options ->
          Mln { options with Mln.Map_inference.deadline; ground_deadline }
      | Psl options -> Psl { options with Psl.Npsl.deadline; ground_deadline }
      | Auto -> assert false
  in
  (* [jobs] defaults to the environment ([TECORE_JOBS], else 1). A pool
     is created — and injected into the engine options — only when more
     than one job is requested, so explicitly configured option pools
     survive the default. *)
  let jobs =
    match jobs with Some j -> j | None -> Prelude.Pool.default_jobs ()
  in
  let pool = if jobs = 1 then None else Some (Prelude.Pool.create ~jobs) in
  let engine =
    match (engine, pool) with
    | Mln options, Some pool -> Mln { options with Mln.Map_inference.pool }
    | Psl options, Some pool -> Psl { options with Psl.Npsl.pool }
    | e, _ -> e
  in
  Obs.event "engine.selected"
    [
      ( "engine",
        Obs.Events.Str
          (match engine with
          | Mln _ -> "mln"
          | Psl _ -> "psl"
          | Auto -> "auto") );
      ("jobs", Obs.Events.Int jobs);
    ];
  (* Pool scheduling counters must be captured on every exit — a
     rejected grounding or a crashed solver used the pool too, and the
     Obs report of a failed run is exactly where those numbers matter. *)
  let emit_pool_stats () =
    match pool with
    | None -> ()
    | Some pool ->
        let s = Prelude.Pool.stats pool in
        Obs.count ~n:s.Prelude.Pool.calls "pool.calls";
        Obs.count ~n:s.Prelude.Pool.tasks "pool.tasks";
        Obs.add "pool.busy_ms" s.Prelude.Pool.busy_ms;
        Obs.add "pool.wall_ms" s.Prelude.Pool.wall_ms;
        if s.Prelude.Pool.wall_ms > 0.0 then
          Obs.gauge "pool.speedup"
            (s.Prelude.Pool.busy_ms /. s.Prelude.Pool.wall_ms)
  in
  let interpret store instances assignment =
    Obs.span "interpret" (fun () ->
        Conflict.interpret ~graph ~store ~instances ~assignment ())
  in
  (* ---------------- stateful (incremental-capable) path ------------- *)
  let run_state st =
    Fun.protect ~finally:emit_pool_stats @@ fun () ->
    let pool = Option.value pool ~default:Prelude.Pool.sequential in
    let fp = fingerprint_of engine threshold in
    let fp_ok = st.fp = Some fp in
    let had_fp = st.fp <> None in
    if not fp_ok then invalidate st;
    st.fp <- Some fp;
    let d = match delta with Some d -> d | None -> { facts = []; rules_changed = true } in
    let fresh_ground () =
      let (store, ground_result, snap), ground_ms =
        Prelude.Timing.time (fun () ->
            Obs.span "ground" (fun () ->
                let store = Grounder.Atom_store.of_graph graph in
                let ground_result, snap =
                  Grounder.Ground.run_record ~pool ~lazy_constraints:true store
                    rules
                in
                (store, ground_result, snap)))
      in
      (store, ground_result, snap, ground_ms)
    in
    let incremental_ground snapshot =
      (* The [incr_timeout] fault point simulates a failure in the middle
         of the incremental machinery; the handler below must recover
         with a correct fresh resolve, never a stale cache. *)
      Prelude.Deadline.Faults.inject "incr_timeout"
        ~index:(Prelude.Deadline.Faults.arg "incr_timeout");
      let delta_preds =
        List.sort_uniq String.compare
          (List.map
             (fun (a : Logic.Atom.Ground.t) -> a.Logic.Atom.Ground.predicate)
             d.facts)
      in
      let affected = Grounder.Ground.affected_rules ~delta:delta_preds rules in
      let rejoined = List.length (List.filter affected rules) in
      Obs.count ~n:rejoined "incr.rejoined_rules";
      Obs.count ~n:(List.length rules - rejoined) "incr.replayed_rules";
      let out, ground_ms =
        Prelude.Timing.time (fun () ->
            Obs.span "ground" (fun () ->
                let store = Grounder.Atom_store.of_graph graph in
                match
                  Grounder.Ground.reground ~snapshot ~affected
                    ~lazy_constraints:true store rules
                with
                | Some (ground_result, snap) ->
                    Some (store, ground_result, snap)
                | None -> None))
      in
      match out with
      | Some (store, ground_result, snap) ->
          Some (store, ground_result, snap, ground_ms)
      | None -> None
    in
    let fall_back () =
      Obs.count "incr.fallback_events";
      st.snapshot <- None;
      st.last <- None;
      Mln.Decompose.clear_cache st.mln_cache;
      Psl.Decompose.clear_cache st.psl_cache;
      (fresh_ground (), Fallback)
    in
    let grounding, outcome =
      match mode with
      | `Fresh -> (`Ground (fresh_ground ()), Fresh_run)
      | `Incremental ->
          if (not fp_ok) || d.rules_changed || st.snapshot = None then begin
            (* Rule edits invalidate everything: the snapshot replays a
               specific rule list, and stale clauses from a removed rule
               must never survive in any cache. *)
            if d.rules_changed then invalidate st;
            st.fp <- Some fp;
            let oc =
              if had_fp && ((not fp_ok) || d.rules_changed) then Invalidate
              else Miss
            in
            (`Ground (fresh_ground ()), oc)
          end
          else if d.facts = [] && st.last <> None then (`Cached, Hit)
          else begin
            match incremental_ground (Option.get st.snapshot) with
            | Some g -> (`Ground g, Replay)
            | None ->
                let g, oc = fall_back () in
                (`Ground g, oc)
            | exception e ->
                Obs.event ~level:Obs.Events.Warn "incr.fault"
                  [ ("exn", Obs.Events.Str (Printexc.to_string e)) ];
                let g, oc = fall_back () in
                (`Ground g, oc)
          end
    in
    st.outcome <- Some outcome;
    Obs.count ("incr." ^ outcome_name outcome);
    Obs.event "incr.resolve"
      [
        ( "mode",
          Obs.Events.Str
            (match mode with `Fresh -> "fresh" | `Incremental -> "incremental")
        );
        ("outcome", Obs.Events.Str (outcome_name outcome));
        ("delta_facts", Obs.Events.Int (List.length d.facts));
      ];
    match grounding with
    | `Cached -> (
        match st.last with Some r -> r | None -> assert false)
    | `Ground (store, ground_result, snap, ground_ms) ->
        let run () =
          match engine with
          | Auto -> assert false
          | Mln options ->
              let options =
                {
                  options with
                  Mln.Map_inference.solve_cache = Some st.mln_cache;
                }
              in
              let out =
                Mln.Map_inference.run_ground ~options store ground_result
                  ~ground_ms
              in
              ( interpret store out.Mln.Map_inference.instances
                  out.Mln.Map_inference.assignment,
                {
                  store;
                  instances = out.Mln.Map_inference.instances;
                  assignment = out.Mln.Map_inference.assignment;
                },
                Translator.Mln_engine,
                out.Mln.Map_inference.stats.Mln.Map_inference.atoms,
                out.Mln.Map_inference.stats.Mln.Map_inference.solve_ms,
                out.Mln.Map_inference.stats.Mln.Map_inference.hard_violations,
                out.Mln.Map_inference.stats.Mln.Map_inference.objective,
                out.Mln.Map_inference.stats.Mln.Map_inference.status )
          | Psl options ->
              let options =
                { options with Psl.Npsl.solve_cache = Some st.psl_cache }
              in
              let out =
                Psl.Npsl.run_ground ~options store ground_result ~ground_ms
              in
              ( interpret store out.Psl.Npsl.instances out.Psl.Npsl.assignment,
                {
                  store;
                  instances = out.Psl.Npsl.instances;
                  assignment = out.Psl.Npsl.assignment;
                },
                Translator.Psl_engine,
                out.Psl.Npsl.stats.Psl.Npsl.atoms,
                out.Psl.Npsl.stats.Psl.Npsl.solve_ms,
                out.Psl.Npsl.stats.Psl.Npsl.rounding.Psl.Rounding.unrepaired,
                out.Psl.Npsl.stats.Psl.Npsl.admm.Psl.Admm.objective,
                out.Psl.Npsl.stats.Psl.Npsl.status )
        in
        let ( (resolution, raw, engine_used, atoms, solve_ms, hard_violations,
               objective, status),
              rest_ms ) =
          Prelude.Timing.time run
        in
        let resolution =
          match threshold with
          | None -> resolution
          | Some t -> Conflict.apply_threshold t resolution
        in
        let result =
          {
            resolution;
            report;
            stats =
              {
                engine_used;
                atoms;
                ground_ms;
                solve_ms;
                total_ms = ground_ms +. rest_ms;
                hard_violations;
                objective;
                status;
              };
            raw;
          }
        in
        st.snapshot <- Some snap;
        st.last <- (if status = Deadline.Completed then Some result else None);
        result
  in
  (* ---------------- stateless (legacy) path ------------------------- *)
  let run_stateless () =
    let run () =
      match engine with
      | Auto -> assert false
      | Mln options ->
          let out = Mln.Map_inference.run ~options graph rules in
          ( interpret out.Mln.Map_inference.store
              out.Mln.Map_inference.instances out.Mln.Map_inference.assignment,
            {
              store = out.Mln.Map_inference.store;
              instances = out.Mln.Map_inference.instances;
              assignment = out.Mln.Map_inference.assignment;
            },
            Translator.Mln_engine,
            out.Mln.Map_inference.stats.Mln.Map_inference.atoms,
            out.Mln.Map_inference.stats.Mln.Map_inference.ground_ms,
            out.Mln.Map_inference.stats.Mln.Map_inference.solve_ms,
            out.Mln.Map_inference.stats.Mln.Map_inference.hard_violations,
            out.Mln.Map_inference.stats.Mln.Map_inference.objective,
            out.Mln.Map_inference.stats.Mln.Map_inference.status )
      | Psl options ->
          let out = Psl.Npsl.run ~options graph rules in
          ( interpret out.Psl.Npsl.store out.Psl.Npsl.instances
              out.Psl.Npsl.assignment,
            {
              store = out.Psl.Npsl.store;
              instances = out.Psl.Npsl.instances;
              assignment = out.Psl.Npsl.assignment;
            },
            Translator.Psl_engine,
            out.Psl.Npsl.stats.Psl.Npsl.atoms,
            out.Psl.Npsl.stats.Psl.Npsl.ground_ms,
            out.Psl.Npsl.stats.Psl.Npsl.solve_ms,
            out.Psl.Npsl.stats.Psl.Npsl.rounding.Psl.Rounding.unrepaired,
            out.Psl.Npsl.stats.Psl.Npsl.admm.Psl.Admm.objective,
            out.Psl.Npsl.stats.Psl.Npsl.status )
    in
    let ( (resolution, raw, engine_used, atoms, ground_ms, solve_ms,
           hard_violations, objective, status),
          total_ms ) =
      Fun.protect ~finally:emit_pool_stats (fun () ->
          try Prelude.Timing.time run
          with Grounder.Ground.Timed_out { atoms; rounds } ->
            Obs.event ~level:Obs.Events.Error "ground.timed_out"
              [
                ("atoms", Obs.Events.Int atoms);
                ("rounds", Obs.Events.Int rounds);
              ];
            if Deadline.is_finite deadline then begin
              Obs.count "deadline.expired";
              Obs.gauge "deadline.budget_ms" (Deadline.budget_ms deadline)
            end;
            raise
              (Ground_timed_out (ground_timeout_report report ~atoms ~rounds)))
    in
    (* Deadline telemetry is emitted only for finite budgets so that runs
       without [--timeout] produce byte-identical reports to earlier
       releases. *)
    if Deadline.is_finite deadline then begin
      if status <> Deadline.Completed then
        Obs.event ~level:Obs.Events.Warn "deadline.expired"
          [
            ("budget_ms", Obs.Events.Float (Deadline.budget_ms deadline));
            ( "status",
              Obs.Events.Str (Format.asprintf "%a" Deadline.pp_status status) );
          ];
      Obs.count ~n:(if status = Deadline.Completed then 0 else 1)
        "deadline.expired";
      Obs.gauge "deadline.budget_ms" (Deadline.budget_ms deadline);
      Obs.gauge "deadline.slack_ms" (Deadline.remaining_ms deadline)
    end;
    let resolution =
      match threshold with
      | None -> resolution
      | Some t -> Conflict.apply_threshold t resolution
    in
    {
      resolution;
      report;
      stats =
        {
          engine_used;
          atoms;
          ground_ms;
          solve_ms;
          total_ms;
          hard_violations;
          objective;
          status;
        };
      raw;
    }
  in
  match state with
  | Some st when not (Deadline.is_finite deadline) -> run_state st
  | Some st ->
      (* A finite deadline makes cached reuse unsound (a budgeted solve
         is not a pure function of the problem), so the state machinery
         steps aside entirely. *)
      if mode = `Incremental then begin
        st.outcome <- Some Bypass;
        Obs.count "incr.bypass"
      end;
      run_stateless ()
  | None -> run_stateless ()

let pp_result ppf r =
  Format.fprintf ppf "@[<v>engine: %s@ %a@ runtime: %.1f ms (ground %.1f, solve %.1f)@]"
    (match r.stats.engine_used with
    | Translator.Mln_engine -> "MLN (nRockIt path)"
    | Translator.Psl_engine -> "nPSL")
    Conflict.pp_summary r.resolution r.stats.total_ms r.stats.ground_ms
    r.stats.solve_ms;
  (* Printed only for budget-limited runs: with no deadline the status
     is always [Completed] and the output stays identical to earlier
     releases. *)
  if r.stats.status <> Deadline.Completed then
    Format.fprintf ppf "@.status: %a (best-effort result)" Deadline.pp_status
      r.stats.status
