type engine =
  | Mln of Mln.Map_inference.options
  | Psl of Psl.Npsl.options
  | Auto

type run_stats = {
  engine_used : Translator.engine_choice;
  atoms : int;
  ground_ms : float;
  solve_ms : float;
  total_ms : float;
  hard_violations : int;
}

type raw = {
  store : Grounder.Atom_store.t;
  instances : Grounder.Ground.Instance.t list;
  assignment : bool array;
}

type result = {
  resolution : Conflict.resolution;
  report : Translator.report;
  stats : run_stats;
  raw : raw;
}

exception Rejected of Translator.report

let resolve ?(engine = Auto) ?jobs ?threshold graph rules =
  Obs.span "resolve" @@ fun () ->
  let report = Obs.span "translate" (fun () -> Translator.analyse graph rules) in
  if not report.Translator.ok then raise (Rejected report);
  let engine =
    match engine with
    | Auto -> (
        match report.Translator.recommended with
        | Translator.Mln_engine -> Mln Mln.Map_inference.default_options
        | Translator.Psl_engine -> Psl Psl.Npsl.default_options)
    | e -> e
  in
  (* [jobs] defaults to the environment ([TECORE_JOBS], else 1). A pool
     is created — and injected into the engine options — only when more
     than one job is requested, so explicitly configured option pools
     survive the default. *)
  let jobs =
    match jobs with Some j -> j | None -> Prelude.Pool.default_jobs ()
  in
  let pool = if jobs = 1 then None else Some (Prelude.Pool.create ~jobs) in
  let engine =
    match (engine, pool) with
    | Mln options, Some pool -> Mln { options with Mln.Map_inference.pool }
    | Psl options, Some pool -> Psl { options with Psl.Npsl.pool }
    | e, _ -> e
  in
  let run () =
    match engine with
    | Auto -> assert false
    | Mln options ->
        let out = Mln.Map_inference.run ~options graph rules in
        ( Obs.span "interpret" (fun () ->
              Conflict.interpret ~graph ~store:out.Mln.Map_inference.store
                ~instances:out.Mln.Map_inference.instances
                ~assignment:out.Mln.Map_inference.assignment ()),
          {
            store = out.Mln.Map_inference.store;
            instances = out.Mln.Map_inference.instances;
            assignment = out.Mln.Map_inference.assignment;
          },
          Translator.Mln_engine,
          out.Mln.Map_inference.stats.Mln.Map_inference.atoms,
          out.Mln.Map_inference.stats.Mln.Map_inference.ground_ms,
          out.Mln.Map_inference.stats.Mln.Map_inference.solve_ms,
          out.Mln.Map_inference.stats.Mln.Map_inference.hard_violations )
    | Psl options ->
        let out = Psl.Npsl.run ~options graph rules in
        ( Obs.span "interpret" (fun () ->
              Conflict.interpret ~graph ~store:out.Psl.Npsl.store
                ~instances:out.Psl.Npsl.instances
                ~assignment:out.Psl.Npsl.assignment ()),
          {
            store = out.Psl.Npsl.store;
            instances = out.Psl.Npsl.instances;
            assignment = out.Psl.Npsl.assignment;
          },
          Translator.Psl_engine,
          out.Psl.Npsl.stats.Psl.Npsl.atoms,
          out.Psl.Npsl.stats.Psl.Npsl.ground_ms,
          out.Psl.Npsl.stats.Psl.Npsl.solve_ms,
          out.Psl.Npsl.stats.Psl.Npsl.rounding.Psl.Rounding.unrepaired )
  in
  let ( (resolution, raw, engine_used, atoms, ground_ms, solve_ms,
         hard_violations),
        total_ms ) =
    Prelude.Timing.time run
  in
  (match pool with
  | None -> ()
  | Some pool ->
      let s = Prelude.Pool.stats pool in
      Obs.count ~n:s.Prelude.Pool.calls "pool.calls";
      Obs.count ~n:s.Prelude.Pool.tasks "pool.tasks";
      Obs.add "pool.busy_ms" s.Prelude.Pool.busy_ms;
      Obs.add "pool.wall_ms" s.Prelude.Pool.wall_ms;
      if s.Prelude.Pool.wall_ms > 0.0 then
        Obs.gauge "pool.speedup" (s.Prelude.Pool.busy_ms /. s.Prelude.Pool.wall_ms));
  let resolution =
    match threshold with
    | None -> resolution
    | Some t -> Conflict.apply_threshold t resolution
  in
  {
    resolution;
    report;
    stats =
      { engine_used; atoms; ground_ms; solve_ms; total_ms; hard_violations };
    raw;
  }

let pp_result ppf r =
  Format.fprintf ppf "@[<v>engine: %s@ %a@ runtime: %.1f ms (ground %.1f, solve %.1f)@]"
    (match r.stats.engine_used with
    | Translator.Mln_engine -> "MLN (nRockIt path)"
    | Translator.Psl_engine -> "nPSL")
    Conflict.pp_summary r.resolution r.stats.total_ms r.stats.ground_ms
    r.stats.solve_ms
