type answer = {
  subst : Logic.Subst.t;
  facts : Kg.Graph.id list;
  confidence : float;
}

let run_parsed graph atoms conditions =
  let rule =
    (* A query is a rule body; Bottom is a placeholder head, and
       Rule.make enforces exactly the safety conditions queries need. *)
    Logic.Rule.make ~name:"query" ~conditions ~body:atoms Logic.Rule.Bottom
  in
  let store = Grounder.Atom_store.of_graph graph in
  List.map
    (fun { Grounder.Body.subst; body_atoms } ->
      let facts, confidence =
        List.fold_left
          (fun (facts, confidence) atom_id ->
            match Grounder.Atom_store.origin store atom_id with
            | Grounder.Atom_store.Evidence { fact; confidence = c } ->
                (fact :: facts, confidence *. c)
            | Grounder.Atom_store.Hidden -> (facts, confidence))
          ([], 1.0) body_atoms
      in
      { subst; facts = List.rev facts; confidence })
    (Grounder.Body.all store rule)

let run ?namespace graph src =
  match Rulelang.Parser.parse_query ?namespace src with
  | Error e -> Error (Format.asprintf "%a" Rulelang.Parser.pp_error e)
  | Ok (atoms, conditions) -> (
      match run_parsed graph atoms conditions with
      | answers -> Ok answers
      | exception (Logic.Rule.Ill_formed msg | Invalid_argument msg) ->
          Error msg)

let select ?namespace graph src vars =
  Result.map
    (fun answers ->
      List.map
        (fun a -> List.map (fun v -> Logic.Subst.find a.subst v) vars)
        answers)
    (run ?namespace graph src)

let pp_answer graph ppf a =
  Format.fprintf ppf "@[<v>%a  (confidence %.3g)" Logic.Subst.pp a.subst
    a.confidence;
  List.iter
    (fun id -> Format.fprintf ppf "@   %a" Kg.Quad.pp (Kg.Graph.find graph id))
    a.facts;
  Format.fprintf ppf "@]"
