(** The TeCoRe translator: validation and solver-capability analysis.

    The paper's translator "parses data, inference rules, and temporal
    constraints, and transforms those into the specific syntax of the
    chosen solver", taking "special care ... to verify that the input
    adheres to the expressivity of the solver". The transformation itself
    is {!Grounder} + {!Mln.Network} / {!Psl.Hlmrf}; this module performs
    the up-front verification and produces an analysis report:

    - safety of every rule (range restriction);
    - predicates used by rules that do not occur in the selected KG
      (typo detection for the constraint editor);
    - per-solver expressivity notes: the MLN path solves the exact
      Boolean MAP problem and supports deterministic (hard) semantics
      exactly; the PSL path relaxes to Łukasiewicz semantics, so soft
      disjunction weights are approximated — the classic
      expressiveness-for-scalability trade the demo discusses;
    - an engine recommendation based on instance size. *)

type severity = Info | Warning | Error

type note = {
  severity : severity;
  rule : string option;     (** rule name, when the note is rule-specific *)
  message : string;
}

type engine_choice = Mln_engine | Psl_engine

type report = {
  notes : note list;
  ok : bool;                (** no [Error] notes *)
  recommended : engine_choice;
  estimated_atoms : int;
}

val analyse : Kg.Graph.t -> Logic.Rule.t list -> report

val mln_size_limit : int
(** Fact count above which the PSL engine is recommended (the paper's
    "MLN solvers do not scale well"). *)

val pp_report : Format.formatter -> report -> unit
