module Store = Grounder.Atom_store
module Instance = Grounder.Ground.Instance

type repair = {
  removed : (Kg.Graph.id * Kg.Quad.t) list;
  consistent : Kg.Graph.t;
  removed_confidence : float;
}

(* A removable unit: one evidence atom with every duplicate fact behind
   it. Removing an atom means removing all of its facts. *)
type group = {
  facts : Kg.Graph.id list;
  cost : float;
}

let conflict_groups graph rules =
  let store = Store.of_graph graph in
  let result = Grounder.Ground.run ~lazy_constraints:true store rules in
  let group_of_atom = Hashtbl.create 64 in
  let group atom_id =
    match Hashtbl.find_opt group_of_atom atom_id with
    | Some g -> g
    | None ->
        let facts = Store.evidence_facts store atom_id in
        (* Duplicates do not stack under θ (the atom keeps the maximum
           confidence), so the group's removal cost is the max too —
           keeping greedy and the hitting sets aligned with MAP. *)
        let cost =
          List.fold_left
            (fun acc id ->
              Float.max acc (Kg.Graph.find graph id).Kg.Quad.confidence)
            0.0 facts
        in
        let g = { facts; cost } in
        Hashtbl.replace group_of_atom atom_id g;
        g
  in
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun { Instance.rule; body_atoms; head } ->
      if head = Instance.Violated && Logic.Rule.is_hard rule then begin
        let atoms =
          List.filter (Store.is_evidence store) body_atoms
          |> List.sort_uniq Int.compare
        in
        if atoms = [] || Hashtbl.mem seen atoms then None
        else begin
          Hashtbl.replace seen atoms ();
          Some (List.map group atoms)
        end
      end
      else None)
    result.Grounder.Ground.instances

let conflict_sets graph rules =
  conflict_groups graph rules
  |> List.map (fun groups ->
         List.concat_map (fun g -> g.facts) groups |> List.sort Int.compare)

let finish graph groups_removed =
  let consistent = Kg.Graph.copy graph in
  let removed =
    List.concat_map
      (fun g ->
        List.map
          (fun id ->
            Kg.Graph.remove consistent id;
            (id, Kg.Graph.find graph id))
          g.facts)
      groups_removed
  in
  {
    removed;
    consistent;
    removed_confidence =
      List.fold_left (fun acc g -> acc +. g.cost) 0.0 groups_removed;
  }

let greedy graph rules =
  let sets = ref (conflict_groups graph rules) in
  let removed = ref [] in
  while !sets <> [] do
    (* Score each candidate group: clashes hit, ties by lowest cost. *)
    let score = Hashtbl.create 64 in
    List.iter
      (fun groups ->
        List.iter
          (fun g ->
            Hashtbl.replace score g.facts
              ( g,
                1
                + (match Hashtbl.find_opt score g.facts with
                  | Some (_, hits) -> hits
                  | None -> 0) ))
          groups)
      !sets;
    let best =
      Hashtbl.fold
        (fun _ (g, hits) best ->
          match best with
          | None -> Some (g, hits)
          | Some (bg, bhits) ->
              if hits > bhits || (hits = bhits && g.cost < bg.cost) then
                Some (g, hits)
              else best)
        score None
    in
    match best with
    | None -> sets := []
    | Some (g, _) ->
        removed := g :: !removed;
        sets :=
          List.filter
            (fun groups ->
              not (List.exists (fun g' -> g'.facts = g.facts) groups))
            !sets
  done;
  finish graph (List.rev !removed)

let minimal_hitting_sets ?(max_sets = 100) sets =
  match sets with
  | [] -> [ [] ]
  | _ ->
      (* Breadth-first expansion of partial hitting sets (HS-tree style):
         minimum-cardinality sets surface first; minimality is enforced
         by subset checks against accepted sets. *)
      let accepted = ref [] in
      let is_superset candidate smaller =
        List.for_all (fun x -> List.mem x candidate) smaller
      in
      let queue = Queue.create () in
      Queue.add [] queue;
      while (not (Queue.is_empty queue)) && List.length !accepted < max_sets do
        let partial = Queue.pop queue in
        if not (List.exists (is_superset partial) !accepted) then begin
          match
            List.find_opt
              (fun set -> not (List.exists (fun id -> List.mem id partial) set))
              sets
          with
          | None -> accepted := partial :: !accepted
          | Some unhit ->
              List.iter
                (fun id ->
                  let extended = List.sort Int.compare (id :: partial) in
                  Queue.add extended queue)
                unhit
        end
      done;
      let unique =
        List.sort_uniq compare (List.map (List.sort Int.compare) !accepted)
      in
      let minimal =
        List.filter
          (fun s ->
            not
              (List.exists (fun other -> other <> s && is_superset s other) unique))
          unique
      in
      List.sort (fun a b -> Int.compare (List.length a) (List.length b)) minimal

let optimal_hitting_set graph rules =
  let group_sets = conflict_groups graph rules in
  (* HS-tree enumeration is exponential in the number of conflict sets;
     refuse instances beyond diagnosis scale instead of hanging. *)
  if List.length group_sets > 15 then None
  else
  (* Index the distinct groups so hitting sets run over small ints. *)
  let groups = Hashtbl.create 64 in
  List.iter
    (fun set ->
      List.iter
        (fun g -> if not (Hashtbl.mem groups g.facts) then
            Hashtbl.replace groups g.facts (Hashtbl.length groups, g))
        set)
    group_sets;
  let by_index = Array.make (max 1 (Hashtbl.length groups)) None in
  Hashtbl.iter (fun _ (i, g) -> by_index.(i) <- Some g) groups;
  let int_sets =
    List.map
      (fun set -> List.map (fun g -> fst (Hashtbl.find groups g.facts)) set)
      group_sets
  in
  let candidates = minimal_hitting_sets ~max_sets:500 int_sets in
  let cost ids =
    List.fold_left
      (fun acc i ->
        match by_index.(i) with Some g -> acc +. g.cost | None -> acc)
      0.0 ids
  in
  match candidates with
  | [] -> None
  | first :: rest ->
      let best =
        List.fold_left
          (fun best ids -> if cost ids < cost best then ids else best)
          first rest
      in
      Some (finish graph (List.filter_map (fun i -> by_index.(i)) best))
