type kind =
  | Disjointness
  | Functionality
  | Precedence of string

type suggestion = {
  rule : Logic.Rule.t;
  kind : kind;
  predicate : string;
  support : int;
  violations : int;
  ratio : float;
}

type config = {
  min_support : int;
  min_ratio : float;
  max_pairs_per_subject : int;
}

let default_config =
  { min_support = 20; min_ratio = 0.9; max_pairs_per_subject = 50 }

(* Weight for a soft suggestion: log-odds of the observed ratio, capped. *)
let weight_of_ratio ratio =
  if ratio >= 1.0 then None
  else Some (Float.min 10.0 (log (ratio /. (1.0 -. ratio))))

let var = Logic.Lterm.var

let quad p s o t = Logic.Atom.quad_pattern p ~subject:s ~object_:o ~time:t

let disjointness_rule predicate weight =
  Logic.Rule.make ?weight
    ~name:(Printf.sprintf "suggested_%s_disjoint" predicate)
    ~conditions:[ Logic.Cond.Neq (var "y", var "z") ]
    ~body:
      [
        quad predicate (var "x") (var "y") (Logic.Lterm.Tvar "t");
        quad predicate (var "x") (var "z") (Logic.Lterm.Tvar "t2");
      ]
    (Logic.Rule.Require
       (Logic.Cond.allen_set Kg.Allen.Set.disjoint (Logic.Lterm.Tvar "t")
          (Logic.Lterm.Tvar "t2")))

let functionality_rule predicate weight =
  Logic.Rule.make ?weight
    ~name:(Printf.sprintf "suggested_%s_functional" predicate)
    ~conditions:
      [
        Logic.Cond.allen_set Kg.Allen.Set.intersects (Logic.Lterm.Tvar "t")
          (Logic.Lterm.Tvar "t2");
      ]
    ~body:
      [
        quad predicate (var "x") (var "y") (Logic.Lterm.Tvar "t");
        quad predicate (var "x") (var "z") (Logic.Lterm.Tvar "t2");
      ]
    (Logic.Rule.Require (Logic.Cond.Eq (var "y", var "z")))

let precedence_rule p q weight =
  Logic.Rule.make ?weight
    ~name:(Printf.sprintf "suggested_%s_before_%s" p q)
    ~body:
      [
        quad p (var "x") (var "y") (Logic.Lterm.Tvar "t");
        quad q (var "x") (var "z") (Logic.Lterm.Tvar "t2");
      ]
    (Logic.Rule.Require
       (Logic.Cond.Cmp
          ( Logic.Cond.Le,
            Logic.Cond.Start_of (Logic.Lterm.Tvar "t"),
            Logic.Cond.Start_of (Logic.Lterm.Tvar "t2") )))

(* All same-subject fact pairs of a predicate, capped per subject. *)
let subject_pairs config graph predicate =
  let by_subject = Hashtbl.create 256 in
  List.iter
    (fun (_, q) ->
      let key = Kg.Term.to_string q.Kg.Quad.subject in
      Hashtbl.replace by_subject key
        (q :: Option.value (Hashtbl.find_opt by_subject key) ~default:[]))
    (Kg.Graph.by_predicate graph (Kg.Term.iri predicate));
  Hashtbl.fold
    (fun _ facts acc ->
      let rec pairs taken acc = function
        | [] | [ _ ] -> acc
        | a :: rest ->
            if taken >= config.max_pairs_per_subject then acc
            else
              let acc, taken =
                List.fold_left
                  (fun (acc, taken) b ->
                    if taken >= config.max_pairs_per_subject then (acc, taken)
                    else ((a, b) :: acc, taken + 1))
                  (acc, taken) rest
              in
              pairs taken acc rest
      in
      pairs 0 acc facts)
    by_subject []

let mine_predicate config graph predicate =
  let pairs = subject_pairs config graph predicate in
  let support = List.length pairs in
  if support < config.min_support then []
  else begin
    let distinct_objects =
      List.filter
        (fun ((a : Kg.Quad.t), (b : Kg.Quad.t)) ->
          not (Kg.Term.equal a.object_ b.object_))
        pairs
    in
    let candidates = ref [] in
    (* Disjointness over pairs with distinct objects. *)
    let d_support = List.length distinct_objects in
    if d_support >= config.min_support then begin
      let violations =
        List.length
          (List.filter
             (fun ((a : Kg.Quad.t), (b : Kg.Quad.t)) ->
               Kg.Interval.overlaps a.time b.time)
             distinct_objects)
      in
      let ratio =
        float_of_int (d_support - violations) /. float_of_int d_support
      in
      if ratio >= config.min_ratio then
        candidates :=
          {
            rule = disjointness_rule predicate (weight_of_ratio ratio);
            kind = Disjointness;
            predicate;
            support = d_support;
            violations;
            ratio;
          }
          :: !candidates
    end;
    (* Functionality over temporally intersecting pairs. *)
    let intersecting =
      List.filter
        (fun ((a : Kg.Quad.t), (b : Kg.Quad.t)) ->
          Kg.Interval.overlaps a.time b.time)
        pairs
    in
    let f_support = List.length intersecting in
    if f_support >= config.min_support then begin
      let violations =
        List.length
          (List.filter
             (fun ((a : Kg.Quad.t), (b : Kg.Quad.t)) ->
               not (Kg.Term.equal a.object_ b.object_))
             intersecting)
      in
      let ratio =
        float_of_int (f_support - violations) /. float_of_int f_support
      in
      if ratio >= config.min_ratio then
        candidates :=
          {
            rule = functionality_rule predicate (weight_of_ratio ratio);
            kind = Functionality;
            predicate;
            support = f_support;
            violations;
            ratio;
          }
          :: !candidates
    end;
    !candidates
  end

(* Precedence between two predicates sharing subjects. *)
let mine_precedence config graph p q =
  let q_by_subject = Hashtbl.create 256 in
  List.iter
    (fun (_, fact) ->
      let key = Kg.Term.to_string fact.Kg.Quad.subject in
      Hashtbl.replace q_by_subject key
        (fact :: Option.value (Hashtbl.find_opt q_by_subject key) ~default:[]))
    (Kg.Graph.by_predicate graph (Kg.Term.iri q));
  let support = ref 0 in
  let violations = ref 0 in
  List.iter
    (fun (_, (pf : Kg.Quad.t)) ->
      match
        Hashtbl.find_opt q_by_subject (Kg.Term.to_string pf.subject)
      with
      | None -> ()
      | Some qfacts ->
          List.iter
            (fun (qf : Kg.Quad.t) ->
              incr support;
              if Kg.Interval.lo pf.time > Kg.Interval.lo qf.time then
                incr violations)
            qfacts)
    (Kg.Graph.by_predicate graph (Kg.Term.iri p));
  if !support < config.min_support then None
  else
    let ratio =
      float_of_int (!support - !violations) /. float_of_int !support
    in
    if ratio >= config.min_ratio then
      Some
        {
          rule = precedence_rule p q (weight_of_ratio ratio);
          kind = Precedence q;
          predicate = p;
          support = !support;
          violations = !violations;
          ratio;
        }
    else None

let mine ?(config = default_config) graph =
  let predicates =
    List.map (fun (p, _) -> Kg.Term.to_string p) (Kg.Graph.predicates graph)
  in
  let unary = List.concat_map (mine_predicate config graph) predicates in
  let pairwise =
    List.concat_map
      (fun p ->
        List.filter_map
          (fun q -> if p = q then None else mine_precedence config graph p q)
          predicates)
      predicates
  in
  List.sort
    (fun a b ->
      match Float.compare b.ratio a.ratio with
      | 0 -> Int.compare b.support a.support
      | c -> c)
    (unary @ pairwise)

let pp_suggestion ppf s =
  let kind_name =
    match s.kind with
    | Disjointness -> "disjointness"
    | Functionality -> "functionality"
    | Precedence q -> "precedence vs " ^ q
  in
  Format.fprintf ppf "[%s on %s, ratio %.3f, support %d, violations %d]@ %a"
    kind_name s.predicate s.ratio s.support s.violations Rulelang.Printer.pp_rule
    s.rule
