(** Edit-script language for incremental sessions.

    A script is a line-oriented program driving one {!Session}: load a
    UTKG, edit facts and rules, resolve (incrementally or from scratch),
    and diff the input against the resolution. The CLI's
    [tecore session --script FILE] runs one and prints a deterministic
    transcript (no timings), which the golden tests under [data/] compare
    byte for byte.

    Commands, one per line ([#] starts a comment, blank lines are
    skipped):

    {v
    load FILE                  # load a UTKG (relative to the script)
    assert FACT                # one fact in N-Quads syntax
    retract FACT               # remove the oldest matching fact
    rule NAME [W]: BODY => HEAD .        # add a rule (full declaration)
    constraint NAME: BODY => COND .      # add a constraint
    unrule NAME                # remove a rule by name
    resolve [fresh|incremental]  # run resolution (default incremental)
    diff                       # input graph vs last resolution
    v}

    Parsing is eager: fact and rule payloads are validated up front
    against a throwaway namespace, so a malformed line 10 is reported
    before line 1 runs. All errors — parse and execution — are typed and
    located as [path:line:column]. *)

type command =
  | Load of string
  | Assert_ of string
  | Retract of string
  | Rule of string
  | Unrule of string
  | Resolve of [ `Fresh | `Incremental ]
  | Diff

type located = { cmd : command; line : int; column : int }

type t = { path : string; commands : located list }

type error = { path : string; line : int; column : int; message : string }

val pp_error : Format.formatter -> error -> unit
(** [path:line:column: message], the compiler convention. *)

val parse_string : path:string -> string -> (t, error) result
(** Total: every input returns [Ok] or a located [Error]; never raises.
    [path] is used only for error locations and for resolving relative
    [load] arguments at execution time. *)

val parse_command :
  path:string -> line:int -> string -> (located option, error) result
(** Parse one script line — the unit the server's wire protocol reuses as
    its request language. Total like {!parse_string}: [Ok None] for a
    blank or comment line, [Ok (Some c)] for a command, and a located
    [Error] (at [path:line:column]) otherwise. Payload validation is as
    eager as in {!parse_string}: a malformed fact or rule is refused
    here, before anything executes. *)

val run :
  ?engine:Engine.engine ->
  ?jobs:int ->
  session:Session.t ->
  Format.formatter ->
  t ->
  (unit, error) result
(** Execute against [session], printing the transcript to the formatter.
    A translator rejection prints the report and continues (a rejected
    resolve is a transcript outcome, not a script failure); any other
    execution error — absent retract target, unknown rule name, missing
    graph, unreadable [load] file — halts with a located error. *)
