module Store = Grounder.Atom_store
module Instance = Grounder.Ground.Instance

type removal = {
  fact : Kg.Graph.id;
  quad : Kg.Quad.t;
  clashes : clash list;
}

and clash = {
  constraint_name : string;
  winners : Kg.Quad.t list;
  winner_weight : float;
  loser_weight : float;
}

type derivation = {
  atom : Logic.Atom.Ground.t;
  via : (string * Kg.Quad.t list) list;
}

(* The atom id of a removed evidence fact. *)
let atom_of_fact store fact =
  let found = ref None in
  Store.iter
    (fun id _ origin ->
      match origin with
      | Store.Evidence _ when !found = None ->
          if List.mem fact (Store.evidence_facts store id) then found := Some id
      | _ -> ())
    store;
  !found

let quads_of_atoms store graph atom_ids =
  List.concat_map
    (fun id ->
      List.map (Kg.Graph.find graph) (Store.evidence_facts store id))
    atom_ids

let removals ~store ~instances ~assignment ~graph ~resolution =
  List.map
    (fun (fact, quad) ->
      let atom_id = atom_of_fact store fact in
      (* Symmetric groundings (both orders of a self-join) describe the
         same clash; dedupe on constraint name and partner atoms. *)
      let seen = Hashtbl.create 8 in
      let clashes =
        match atom_id with
        | None -> []
        | Some removed_atom ->
            List.filter_map
              (fun { Instance.rule; body_atoms; head } ->
                (* A clash explains the removal when the instance is a
                   violation containing the removed atom whose other
                   body atoms all survived. *)
                if
                  head = Instance.Violated
                  && List.mem removed_atom body_atoms
                then begin
                  let others =
                    List.filter (fun a -> a <> removed_atom) body_atoms
                  in
                  let key =
                    (rule.Logic.Rule.name, List.sort Int.compare others)
                  in
                  if
                    List.for_all (fun a -> assignment.(a)) others
                    && not (Hashtbl.mem seen key)
                  then begin
                    Hashtbl.replace seen key ();
                    let winners = quads_of_atoms store graph others in
                    if winners = [] then None
                    else
                      Some
                        {
                          constraint_name = rule.Logic.Rule.name;
                          winners;
                          winner_weight =
                            List.fold_left
                              (fun acc q -> Float.min acc (Kg.Quad.weight q))
                              infinity winners;
                          loser_weight = Kg.Quad.weight quad;
                        }
                  end
                  else None
                end
                else None)
              instances
      in
      { fact; quad; clashes })
    resolution.Conflict.removed

let derivations ~store ~instances ~assignment ~graph ~resolution =
  List.map
    (fun (d : Conflict.derived_fact) ->
      let atom_id = Store.find store d.Conflict.atom in
      let via =
        match atom_id with
        | None -> []
        | Some id ->
            List.filter_map
              (fun { Instance.rule; body_atoms; head } ->
                match head with
                | Instance.Derives h
                  when h = id
                       && List.for_all (fun a -> assignment.(a)) body_atoms ->
                    let evidence_support =
                      List.filter (Store.is_evidence store) body_atoms
                    in
                    Some
                      ( rule.Logic.Rule.name,
                        quads_of_atoms store graph evidence_support )
                | _ -> None)
              instances
      in
      { atom = d.Conflict.atom; via })
    resolution.Conflict.derived

let pp_removal ppf r =
  Format.fprintf ppf "@[<v>removed %a" Kg.Quad.pp r.quad;
  (match r.clashes with
  | [] ->
      Format.fprintf ppf "@   (lost on its own weight: confidence %.2g)"
        r.quad.Kg.Quad.confidence
  | clashes ->
      List.iter
        (fun c ->
          Format.fprintf ppf "@   clashes under %s with:" c.constraint_name;
          List.iter
            (fun q -> Format.fprintf ppf "@     %a" Kg.Quad.pp q)
            c.winners;
          Format.fprintf ppf
            "@     (their weight %.2f vs its weight %.2f: it loses)"
            c.winner_weight c.loser_weight)
        clashes);
  Format.fprintf ppf "@]"

let pp_derivation ppf d =
  Format.fprintf ppf "@[<v>derived %a" Logic.Atom.Ground.pp d.atom;
  List.iter
    (fun (rule_name, support) ->
      Format.fprintf ppf "@   via %s from:" rule_name;
      List.iter (fun q -> Format.fprintf ppf "@     %a" Kg.Quad.pp q) support)
    d.via;
  Format.fprintf ppf "@]"

let of_result graph (result : Engine.result) =
  let raw = result.Engine.raw in
  ( removals ~store:raw.Engine.store ~instances:raw.Engine.instances
      ~assignment:raw.Engine.assignment ~graph
      ~resolution:result.Engine.resolution,
    derivations ~store:raw.Engine.store ~instances:raw.Engine.instances
      ~assignment:raw.Engine.assignment ~graph
      ~resolution:result.Engine.resolution )
