(** Alternative repair strategies, for comparison with MAP inference.

    TeCoRe's repair is the most probable consistent subgraph (MAP). The
    KB-debugging literature the paper builds on (e.g. Schlobach et al.'s
    axiom pinpointing) suggests two natural baselines:

    - {b greedy}: while any hard-constraint clash remains, remove the
      lowest-confidence fact involved in the most clashes — fast,
      no solver, but can over-remove;
    - {b minimal hitting sets}: enumerate the conflict sets (bodies of
      violated hard instances) and compute all minimal fact sets whose
      removal resolves every clash — exponential, for small inputs and
      for explaining {e why} the MAP repair chose what it chose.

    Both operate on the same grounding artefacts as the engines, so the
    comparison (bench a7) isolates the repair policy. *)

type repair = {
  removed : (Kg.Graph.id * Kg.Quad.t) list;
  consistent : Kg.Graph.t;
  removed_confidence : float;
      (** effective confidence mass removed (duplicate statements count
          once, at their maximum confidence, matching θ) — lower is a
          better repair *)
}

val greedy : Kg.Graph.t -> Logic.Rule.t list -> repair
(** Iteratively removes the lowest-confidence / most-conflicting fact
    until no hard-constraint instance is violated. Deterministic. *)

val conflict_sets : Kg.Graph.t -> Logic.Rule.t list -> Kg.Graph.id list list
(** The evidence-fact sets that cannot jointly survive (one per violated
    hard instance, deduplicated). *)

val minimal_hitting_sets :
  ?max_sets:int -> Kg.Graph.id list list -> Kg.Graph.id list list
(** All minimal hitting sets of the conflict sets, smallest first,
    truncated at [max_sets] (default 100). Exponential: meant for small
    diagnosis tasks. *)

val optimal_hitting_set :
  Kg.Graph.t -> Logic.Rule.t list -> repair option
(** The minimum-confidence repair among all minimal hitting sets. Agrees
    with MAP inference when no soft rules are present. Returns [None]
    beyond diagnosis scale (more than 15 conflict sets): the HS-tree
    enumeration is exponential and MAP is the scalable way to repair. *)
