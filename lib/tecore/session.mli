(** The demo workflow as a library — TeCoRe's Web UI without the browser.

    A session mirrors the interface of Figures 3, 5 and 8: select a UTKG,
    add inference rules and constraints (with predicate auto-completion
    against the loaded KG), run conflict resolution, and browse the
    consistent and conflicting statements and the statistics panel. The
    CLI in [bin/] drives exactly this API. *)

type t

type error =
  | Io_error of string
      (** file could not be read; the message always names the path *)
  | Parse_error of string
      (** malformed input; the message locates the failure as
          [path:line:column] (column when the lexer knows it) *)
  | Rejected of Translator.report
      (** the translator found an [Error]-level problem *)
  | Ground_timeout of Translator.report
      (** the deadline expired during grounding under [`Fail] — the
          report carries the structured partial-grounding note *)
  | No_graph  (** no knowledge graph selected *)
  | Absent_fact of string
      (** {!retract} found no live fact with that statement *)

val error_message : error -> string
(** Render an error the way the string-result functions below do. *)

val create : unit -> t

val namespace : t -> Kg.Namespace.t

(** {1 Data selection} *)

val load_graph : t -> Kg.Graph.t -> unit

val load : t -> string -> (unit, error) result
(** Load a UTKG file with typed errors: [Io_error] always names the
    offending path, [Parse_error] locates the failure as
    [path:line:column]. *)

val load_file : t -> string -> (unit, string) result
(** [load] with the error rendered through {!error_message}. *)

val load_string : t -> string -> (unit, string) result
val graph : t -> Kg.Graph.t option

(** {1 Fact edits}

    Sessions track the fact/rule delta since the last resolve; the next
    {!resolve} with [~mode:`Incremental] hands it to the engine, which
    re-grounds only the affected rules and re-solves only the touched
    components. *)

val assert_fact : t -> Kg.Quad.t -> (Kg.Graph.id, error) result
(** Insert a fact into the loaded graph and record it in the delta.
    [No_graph] when nothing is loaded. *)

val retract : t -> Kg.Quad.t -> (Kg.Graph.id, error) result
(** Remove the oldest live fact with the same statement (same triple and
    interval — duplicates are legal in a UTKG) and record it in the
    delta. [Absent_fact] when no live fact matches. *)

(** {1 Rules and constraints editor} *)

val add_rules : t -> string -> (Logic.Rule.t list, string) result
(** Parse declarations in the rule language and add them; returns the
    newly added rules. *)

val remove_rule : t -> string -> bool
(** Remove by name; false when absent. *)

val rules : t -> Logic.Rule.t list

val clear_rules : t -> unit

val complete_predicate : t -> string -> string list
(** Auto-completion for the constraints editor (Figure 5): predicates of
    the loaded KG starting with the prefix. *)

val dump_state : t -> string list
(** The session's durable state as replayable script lines: [@prefix]
    directives for the namespace, [open] when a graph is loaded, one
    [rule]/[constraint] declaration per rule and one [assert] line per
    live fact (in insertion order, so retract tie-breaking survives a
    round-trip). Floats render through {!Prelude.Floatlit} so weights
    and confidences reparse bit-identically. This is the body the
    server's journal writes at snapshot compaction (see
    [docs/SERVER.md]). *)

val analyse : t -> (Translator.report, string) result
(** The translator's verification pass for the current selection. *)

(** {1 Running and browsing results} *)

val resolve :
  ?engine:Engine.engine ->
  ?jobs:int ->
  ?threshold:float ->
  ?deadline:Prelude.Deadline.t ->
  ?on_timeout:[ `Fail | `Best_effort ] ->
  ?mode:[ `Fresh | `Incremental ] ->
  t ->
  (Engine.result, error) result
(** Runs resolution with typed errors and stores the result in the
    session; [deadline]/[on_timeout] as in {!Engine.resolve}. A
    translator rejection maps to [Rejected], a grounding timeout under
    [`Fail] to [Ground_timeout].

    [mode] (default [`Fresh]) selects incremental resolution: the
    session passes its accumulated fact/rule delta and its
    {!Engine.state} to the engine, which reuses the previous grounding
    and component solutions where provably identical. On success the
    delta is cleared; on error it is kept for the next attempt. Both
    modes return identical results — [`Incremental] is purely a
    performance mode (see [docs/INCREMENTAL.md]). *)

val cache_outcome : t -> Engine.cache_outcome option
(** How the last resolve used the incremental caches (see
    {!Engine.cache_outcome}); [None] before the first resolve. *)

val engine_state : t -> Engine.state
(** The session's incremental state (for cache statistics). *)

val pending_edits : t -> int
(** Fact edits (asserts and retracts) recorded in the delta since the
    last successful resolve — what the next [`Incremental] resolve will
    replay. The server's [stat] verb surfaces this. *)

val rules_dirty : t -> bool
(** Whether the rule list changed since the last successful resolve
    (forcing the next incremental resolve to invalidate its caches). *)

val run :
  ?engine:Engine.engine ->
  ?jobs:int ->
  ?threshold:float ->
  t ->
  (Engine.result, string) result
(** {!resolve} with the error rendered through {!error_message}. *)

val last_result : t -> Engine.result option

val consistent_statements : t -> Kg.Quad.t list
(** Facts of the conflict-free expanded KG (empty before a run). *)

val conflicting_statements : t -> Kg.Quad.t list
(** The removed facts (browsable list of Figure 8). *)

val statistics : t -> string
(** The statistics panel as rendered text. *)
