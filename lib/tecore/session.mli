(** The demo workflow as a library — TeCoRe's Web UI without the browser.

    A session mirrors the interface of Figures 3, 5 and 8: select a UTKG,
    add inference rules and constraints (with predicate auto-completion
    against the loaded KG), run conflict resolution, and browse the
    consistent and conflicting statements and the statistics panel. The
    CLI in [bin/] drives exactly this API. *)

type t

val create : unit -> t

val namespace : t -> Kg.Namespace.t

(** {1 Data selection} *)

val load_graph : t -> Kg.Graph.t -> unit
val load_file : t -> string -> (unit, string) result
val load_string : t -> string -> (unit, string) result
val graph : t -> Kg.Graph.t option

(** {1 Rules and constraints editor} *)

val add_rules : t -> string -> (Logic.Rule.t list, string) result
(** Parse declarations in the rule language and add them; returns the
    newly added rules. *)

val remove_rule : t -> string -> bool
(** Remove by name; false when absent. *)

val rules : t -> Logic.Rule.t list

val clear_rules : t -> unit

val complete_predicate : t -> string -> string list
(** Auto-completion for the constraints editor (Figure 5): predicates of
    the loaded KG starting with the prefix. *)

val analyse : t -> (Translator.report, string) result
(** The translator's verification pass for the current selection. *)

(** {1 Running and browsing results} *)

val run :
  ?engine:Engine.engine ->
  ?jobs:int ->
  ?threshold:float ->
  t ->
  (Engine.result, string) result
(** Runs resolution and stores the result in the session. *)

val last_result : t -> Engine.result option

val consistent_statements : t -> Kg.Quad.t list
(** Facts of the conflict-free expanded KG (empty before a run). *)

val conflicting_statements : t -> Kg.Quad.t list
(** The removed facts (browsable list of Figure 8). *)

val statistics : t -> string
(** The statistics panel as rendered text. *)
