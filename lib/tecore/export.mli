(** Rendering programs in the solvers' native syntaxes.

    The paper's translator "transforms those into the specific syntax of
    the chosen solver (e.g. nRockIt, PSL)". Our engines consume ground
    instances directly, but the textual translations are exposed so that
    the output can be fed to off-the-shelf ProbFOL systems, mirroring the
    architecture's pluggable-solver claim:

    - {!to_mln}: Alchemy/RockIt-style [.mln] program — declarations,
      weighted first-order formulas (hard formulas end with a period),
      with temporal arguments flattened to interval-endpoint pairs;
    - {!to_mln_evidence}: the θ-translated UTKG as an Alchemy [.db]
      evidence file (soft evidence with its confidence);
    - {!to_psl}: PSL-style rules with arrow syntax and squared-hinge
      markers omitted (we use linear hinges, as TeCoRe's nPSL does). *)

val to_mln : Logic.Rule.t list -> string

val to_mln_evidence : Kg.Graph.t -> string

val to_psl : Logic.Rule.t list -> string

val save : path:string -> string -> unit
(** Write a rendered program to a file. *)
