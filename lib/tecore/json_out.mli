(** JSON rendering of resolution results.

    The demo's browser front-end consumes resolution results over the
    wire; this module is that data contract: a self-contained, dependency
    free JSON serialisation of facts, resolutions and run statistics,
    used by the CLI's [--json] mode and by anything embedding TeCoRe as
    a service. *)

val of_quad : ?namespace:Kg.Namespace.t -> Kg.Quad.t -> string

val of_resolution : ?namespace:Kg.Namespace.t -> Conflict.resolution -> string
(** Object with [kept], [removed] (fact array), [derived] (atom,
    confidence and quad form when it exists) and [conflicting] (fact id
    array). *)

val of_result :
  ?namespace:Kg.Namespace.t ->
  ?deadline:Prelude.Deadline.t ->
  ?obs:Obs.Report.t ->
  Engine.result ->
  string
(** The full payload: engine, statistics and the resolution. When [obs]
    is given, the captured observability report is embedded under an
    ["obs"] key (see {!Obs.Report.to_json}). When [deadline] is given
    and finite, a ["deadline"] object reports the completion [status]
    (["completed"|"timed_out"|"degraded"]), whether the budget
    [expired], and the [budget_ms]/[slack_ms] pair; without one the
    payload is byte-identical to earlier releases. *)

val escape : string -> string
(** JSON string escaping (quotes, backslashes, control characters). *)
