(** The TeCoRe facade: one call from UTKG + rules to a conflict-free KG.

    [resolve] is the demo's headline operation, [map(θ(G), F ∪ C)]: pick
    an engine (the expressive MLN path or the scalable nPSL path), run MAP
    inference, and interpret the state as a resolution. *)

type engine =
  | Mln of Mln.Map_inference.options
  | Psl of Psl.Npsl.options
  | Auto
      (** follow the translator's recommendation with default options *)

type run_stats = {
  engine_used : Translator.engine_choice;
  atoms : int;
  ground_ms : float;
  solve_ms : float;
  total_ms : float;
  hard_violations : int;
      (** >0 means the hard constraints are unsatisfiable even after
          removals (e.g. two conflicting confidence-1.0 facts) *)
}

type raw = {
  store : Grounder.Atom_store.t;
  instances : Grounder.Ground.Instance.t list;
  assignment : bool array;
}
(** The grounding artefacts behind a result, for downstream analyses
    (explanations, marginals) that need more than the resolution. *)

type result = {
  resolution : Conflict.resolution;
  report : Translator.report;
  stats : run_stats;
  raw : raw;
}

exception Rejected of Translator.report
(** Raised when the translator finds an [Error]-level problem. *)

val resolve :
  ?engine:engine ->
  ?jobs:int ->
  ?threshold:float ->
  Kg.Graph.t ->
  Logic.Rule.t list ->
  result
(** [threshold] filters derived facts by confidence after resolution
    (defaults to keeping all). Default engine is [Auto].

    [jobs] sets the worker-domain count for grounding joins and the
    solver portfolios (0 = all cores, see {!Prelude.Pool.create});
    defaults to {!Prelude.Pool.default_jobs} — the [TECORE_JOBS]
    environment variable, else 1. With [jobs = 1] everything runs on the
    calling domain and results are identical to previous releases; at
    higher job counts the reported objective is unchanged (see
    {!Prelude.Pool} for the determinism contract). *)

val pp_result : Format.formatter -> result -> unit
