(** The TeCoRe facade: one call from UTKG + rules to a conflict-free KG.

    [resolve] is the demo's headline operation, [map(θ(G), F ∪ C)]: pick
    an engine (the expressive MLN path or the scalable nPSL path), run MAP
    inference, and interpret the state as a resolution. *)

type engine =
  | Mln of Mln.Map_inference.options
  | Psl of Psl.Npsl.options
  | Auto
      (** follow the translator's recommendation with default options *)

type run_stats = {
  engine_used : Translator.engine_choice;
  atoms : int;
  ground_ms : float;
  solve_ms : float;
  total_ms : float;
  hard_violations : int;
      (** >0 means the hard constraints are unsatisfiable even after
          removals (e.g. two conflicting confidence-1.0 facts) *)
  objective : float;
      (** MAP objective: satisfied soft weight (MLN) or hinge-loss energy
          (PSL). The differential oracle compares it exactly between
          incremental and fresh resolves *)
  status : Prelude.Deadline.status;
      (** anytime outcome of the solve stage: always [Completed] when no
          deadline was set; [Timed_out] when the budget expired but the
          returned resolution is hard-constraint-sound; [Degraded] when
          a worker crashed, the exact→MaxWalkSAT ladder fired, or the
          timed-out answer violates hard constraints *)
}

val choice_name : Translator.engine_choice -> string
(** ["mln"] or ["psl"] — the spelling used in transcripts, [--json]
    output and the server's wire responses. *)

type raw = {
  store : Grounder.Atom_store.t;
  instances : Grounder.Ground.Instance.t list;
  assignment : bool array;
}
(** The grounding artefacts behind a result, for downstream analyses
    (explanations, marginals) that need more than the resolution. *)

type result = {
  resolution : Conflict.resolution;
  report : Translator.report;
  stats : run_stats;
  raw : raw;
}

exception Rejected of Translator.report
(** Raised when the translator finds an [Error]-level problem. *)

exception Ground_timed_out of Translator.report
(** Raised when the deadline expires during grounding under
    [`Fail]: grounding has no sound partial answer (a half-saturated
    store silently drops constraints), so the run is rejected with a
    structured report — the original translator report plus an
    [Error]-level note recording how far the closure got. *)

(** {1 Incremental resolution}

    [resolve ~mode:`Incremental ~state ~delta] reuses work across
    resolves of an edited graph. Three layers of caching, each proven
    result-preserving (see [docs/INCREMENTAL.md] and the differential
    oracle in [test/test_incremental.ml]):

    - a {e result cache}: an empty delta returns the previous result;
    - a {e grounding snapshot}: fact edits replay the previous grounding
      exactly, re-joining only transitively affected rules
      ({!Grounder.Ground.reground});
    - {e component solution caches}: the solvers run per connected
      component and memoise solutions by canonical structural form, so
      untouched components are never re-solved.

    The contract is strict identity: an incremental resolve returns the
    same resolution, objective, raw store/instances/assignment, and
    conflict report as a from-scratch [`Fresh] resolve of the same graph
    and rules, for every engine and job count. *)

type delta = {
  facts : Logic.Atom.Ground.t list;
      (** ground atoms of the facts asserted or retracted since the last
          resolve *)
  rules_changed : bool;
      (** whether the rule list changed; [true] forces full invalidation *)
}

val empty_delta : delta
(** No fact edits, no rule edits. *)

type cache_outcome =
  | Hit          (** empty delta: previous result returned as-is *)
  | Replay       (** delta grounding replayed, solver caches consulted *)
  | Miss         (** no usable state yet: fresh resolve, state recorded *)
  | Invalidate   (** rules or options changed: caches dropped, fresh *)
  | Bypass       (** finite deadline: incremental machinery skipped *)
  | Fallback     (** replay failed mid-flight: fresh resolve instead *)
  | Fresh_run    (** caller asked for [`Fresh]; state still recorded *)

val outcome_name : cache_outcome -> string
(** Lowercase tag used in [incr.*] counters and session transcripts. *)

type state
(** Mutable incremental state: the grounding snapshot, the last result,
    the option fingerprint it was produced under, and the per-engine
    component solution caches. Create one per logical session; a state
    must not be shared across concurrently running resolves. *)

val create_state : unit -> state

val invalidate : state -> unit
(** Drop everything: snapshot, cached result, fingerprint, and both
    component solution caches. The next resolve is a [Miss]. *)

val last_outcome : state -> cache_outcome option
(** How the most recent resolve against this state used the caches;
    [None] before the first stateful resolve. *)

type cache_stats = {
  solve_entries : int;
  solve_hits : int;
  solve_misses : int;
}

val cache_stats : state -> cache_stats
(** Combined component-solution cache counters (MLN + PSL). *)

val resolve :
  ?engine:engine ->
  ?jobs:int ->
  ?threshold:float ->
  ?deadline:Prelude.Deadline.t ->
  ?on_timeout:[ `Fail | `Best_effort ] ->
  ?mode:[ `Fresh | `Incremental ] ->
  ?state:state ->
  ?delta:delta ->
  Kg.Graph.t ->
  Logic.Rule.t list ->
  result
(** [threshold] filters derived facts by confidence after resolution
    (defaults to keeping all). Default engine is [Auto].

    [jobs] sets the worker-domain count for grounding joins and the
    solver portfolios (0 = all cores, see {!Prelude.Pool.create});
    defaults to {!Prelude.Pool.default_jobs} — the [TECORE_JOBS]
    environment variable, else 1. With [jobs = 1] everything runs on the
    calling domain and results are identical to previous releases; at
    higher job counts the reported objective is unchanged (see
    {!Prelude.Pool} for the determinism contract).

    [deadline] (default {!Prelude.Deadline.none}) bounds the run.
    [on_timeout] (default [`Best_effort]) picks the policy:

    - [`Best_effort]: grounding always completes (no sound partial
      grounding exists) and the remaining budget disciplines the
      solver, which returns its best incumbent on expiry. The result's
      [stats.status] reports [Timed_out] or [Degraded]; the exact
      backends degrade to MaxWalkSAT when their budget slice expires
      before optimality is proved. Even an already-expired deadline
      yields a sound (or explicitly [Degraded]) resolution.
    - [`Fail]: grounding polls the deadline too; expiry during
      grounding raises {!Ground_timed_out}. Callers treat any
      non-[Completed] status as failure.

    Without a finite [deadline] the observable behaviour — result,
    formatted output, and Obs report — is identical to previous
    releases; with one, the report gains [deadline.expired],
    [deadline.budget_ms] and [deadline.slack_ms].

    [mode] (default [`Fresh]) and [state]/[delta] drive incremental
    resolution. With [state] absent the call is exactly the stateless
    pipeline. With [state] present and an infinite [deadline], the call
    records its grounding snapshot and result into the state; under
    [`Incremental] it additionally consults them, guided by [delta]
    (absent [delta] is treated conservatively as "rules changed").
    A finite [deadline] bypasses the state machinery entirely
    ([Bypass]): a budgeted solve is not a pure function of the problem,
    so nothing it produces may be cached. Any failure inside the
    incremental machinery (including an injected [incr_timeout] fault)
    invalidates the state and falls back to a correct fresh resolve —
    never a stale cache. Emits [incr.<outcome>] counters and an
    [incr.resolve] event per stateful call. *)

val pp_result : Format.formatter -> result -> unit
