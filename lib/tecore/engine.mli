(** The TeCoRe facade: one call from UTKG + rules to a conflict-free KG.

    [resolve] is the demo's headline operation, [map(θ(G), F ∪ C)]: pick
    an engine (the expressive MLN path or the scalable nPSL path), run MAP
    inference, and interpret the state as a resolution. *)

type engine =
  | Mln of Mln.Map_inference.options
  | Psl of Psl.Npsl.options
  | Auto
      (** follow the translator's recommendation with default options *)

type run_stats = {
  engine_used : Translator.engine_choice;
  atoms : int;
  ground_ms : float;
  solve_ms : float;
  total_ms : float;
  hard_violations : int;
      (** >0 means the hard constraints are unsatisfiable even after
          removals (e.g. two conflicting confidence-1.0 facts) *)
  status : Prelude.Deadline.status;
      (** anytime outcome of the solve stage: always [Completed] when no
          deadline was set; [Timed_out] when the budget expired but the
          returned resolution is hard-constraint-sound; [Degraded] when
          a worker crashed, the exact→MaxWalkSAT ladder fired, or the
          timed-out answer violates hard constraints *)
}

type raw = {
  store : Grounder.Atom_store.t;
  instances : Grounder.Ground.Instance.t list;
  assignment : bool array;
}
(** The grounding artefacts behind a result, for downstream analyses
    (explanations, marginals) that need more than the resolution. *)

type result = {
  resolution : Conflict.resolution;
  report : Translator.report;
  stats : run_stats;
  raw : raw;
}

exception Rejected of Translator.report
(** Raised when the translator finds an [Error]-level problem. *)

exception Ground_timed_out of Translator.report
(** Raised when the deadline expires during grounding under
    [`Fail]: grounding has no sound partial answer (a half-saturated
    store silently drops constraints), so the run is rejected with a
    structured report — the original translator report plus an
    [Error]-level note recording how far the closure got. *)

val resolve :
  ?engine:engine ->
  ?jobs:int ->
  ?threshold:float ->
  ?deadline:Prelude.Deadline.t ->
  ?on_timeout:[ `Fail | `Best_effort ] ->
  Kg.Graph.t ->
  Logic.Rule.t list ->
  result
(** [threshold] filters derived facts by confidence after resolution
    (defaults to keeping all). Default engine is [Auto].

    [jobs] sets the worker-domain count for grounding joins and the
    solver portfolios (0 = all cores, see {!Prelude.Pool.create});
    defaults to {!Prelude.Pool.default_jobs} — the [TECORE_JOBS]
    environment variable, else 1. With [jobs = 1] everything runs on the
    calling domain and results are identical to previous releases; at
    higher job counts the reported objective is unchanged (see
    {!Prelude.Pool} for the determinism contract).

    [deadline] (default {!Prelude.Deadline.none}) bounds the run.
    [on_timeout] (default [`Best_effort]) picks the policy:

    - [`Best_effort]: grounding always completes (no sound partial
      grounding exists) and the remaining budget disciplines the
      solver, which returns its best incumbent on expiry. The result's
      [stats.status] reports [Timed_out] or [Degraded]; the exact
      backends degrade to MaxWalkSAT when their budget slice expires
      before optimality is proved. Even an already-expired deadline
      yields a sound (or explicitly [Degraded]) resolution.
    - [`Fail]: grounding polls the deadline too; expiry during
      grounding raises {!Ground_timed_out}. Callers treat any
      non-[Completed] status as failure.

    Without a finite [deadline] the observable behaviour — result,
    formatted output, and Obs report — is identical to previous
    releases; with one, the report gains [deadline.expired],
    [deadline.budget_ms] and [deadline.slack_ms]. *)

val pp_result : Format.formatter -> result -> unit
