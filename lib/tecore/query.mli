(** Temporal conjunctive queries over a UTKG.

    Related work frames "temporal query evaluation under constraints" as
    the core problem of temporal databases; TeCoRe's grounder is exactly
    a temporal conjunctive-query evaluator, so we expose it directly:
    a query is a rule body — atoms with interval variables plus Allen and
    arithmetic conditions — and an answer is a substitution together with
    the facts that support it and their combined confidence.

    {v
    coach(x, y)@t ^ coach(x, z)@t2 ^ y != z ^ intersects(t, t2)
    v}

    finds every pair of overlapping coaching spells — the clashes that
    constraint c2 would flag. *)

type answer = {
  subst : Logic.Subst.t;
  facts : Kg.Graph.id list;
      (** the matched facts, in query-atom order *)
  confidence : float;
      (** product of the matched facts' confidences *)
}

val run : ?namespace:Kg.Namespace.t -> Kg.Graph.t -> string ->
  (answer list, string) result
(** Parse and evaluate the query against the graph. *)

val run_parsed :
  Kg.Graph.t -> Logic.Atom.t list -> Logic.Cond.t list -> answer list
(** Evaluate an already-parsed query.
    @raise Invalid_argument on unsafe conditions (variables not bound by
    any atom). *)

val select : ?namespace:Kg.Namespace.t -> Kg.Graph.t -> string ->
  string list -> (Kg.Term.t option list list, string) result
(** [select graph query vars] projects each answer onto the named object
    variables — the tabular view a UI would render. *)

val pp_answer : Kg.Graph.t -> Format.formatter -> answer -> unit
