module Value = Reldb.Value
module Table = Reldb.Table
module Relalg = Reldb.Relalg

type binding = {
  subst : Logic.Subst.t;
  body_atoms : Atom_store.id list;
}

let var_col v = "?" ^ v
let tvar_col v = "!" ^ v
let atom_col i = "#" ^ string_of_int i

let is_var_col c = String.length c > 0 && c.[0] = '?'
let is_tvar_col c = String.length c > 0 && c.[0] = '!'

let col_var c = String.sub c 1 (String.length c - 1)

(* Rebuild a substitution from a bindings row. *)
let subst_of_row table =
  let cols = Table.columns table in
  let typed =
    List.filteri (fun _ c -> is_var_col c || is_tvar_col c) cols
    |> List.map (fun c -> (c, Table.column_index table c))
  in
  fun row ->
    List.fold_left
      (fun subst (c, i) ->
        match subst with
        | None -> None
        | Some s ->
            if is_var_col c then
              match Value.as_term row.(i) with
              | Some term -> Logic.Subst.bind s (col_var c) term
              | None -> None
            else
              match Value.as_interval row.(i) with
              | Some iv -> Logic.Subst.bind_time s (col_var c) iv
              | None -> None)
      (Some Logic.Subst.empty) typed

(* Transform one body atom's extension table into a bindings fragment:
   select constants and intra-atom repeated variables, then rename
   argument columns to variable columns and keep one column per variable
   plus the atom-id column. *)
let atom_fragment store index (atom : Logic.Atom.t) =
  let arity = List.length atom.args in
  let temporal = Option.is_some atom.time in
  match Atom_store.table_for store atom.predicate ~arity ~temporal with
  | None -> None
  | Some table ->
      (* Positions of each argument column, with the pattern term. *)
      let arg_cols = List.mapi (fun j term -> (Printf.sprintf "a%d" j, term)) atom.args in
      (* First column for each variable; later occurrences filter. *)
      let first_of_var = Hashtbl.create 8 in
      let renames = ref [] in
      let keep = ref [] in
      let filters = ref [] in
      List.iter
        (fun (col, term) ->
          match term with
          | Logic.Lterm.Const c ->
              let want = Value.term c in
              filters := (col, `Equals want) :: !filters
          | Logic.Lterm.Var v -> (
              match Hashtbl.find_opt first_of_var v with
              | None ->
                  Hashtbl.replace first_of_var v col;
                  renames := (col, var_col v) :: !renames;
                  keep := var_col v :: !keep
              | Some first -> filters := (col, `Same_as first) :: !filters))
        arg_cols;
      (match atom.time with
      | None -> ()
      | Some (Logic.Lterm.Tvar v) ->
          renames := ("t", tvar_col v) :: !renames;
          keep := tvar_col v :: !keep
      | Some (Logic.Lterm.Tconst i) ->
          filters := ("t", `Equals (Value.interval i)) :: !filters
      | Some (Logic.Lterm.Tinter _ | Logic.Lterm.Thull _) ->
          invalid_arg
            (Printf.sprintf
               "body atom %s: computed intervals are not allowed in bodies"
               atom.predicate));
      renames := ("atom", atom_col index) :: !renames;
      keep := atom_col index :: !keep;
      let filters = !filters in
      let selected =
        if filters = [] then table
        else begin
          let compiled =
            List.map
              (fun (col, test) ->
                let i = Table.column_index table col in
                match test with
                | `Equals v -> fun (row : Table.row) -> Value.equal row.(i) v
                | `Same_as other ->
                    let j = Table.column_index table other in
                    fun (row : Table.row) -> Value.equal row.(i) row.(j))
              filters
          in
          Relalg.select (fun row -> List.for_all (fun p -> p row) compiled) table
        end
      in
      let renamed = Relalg.rename !renames selected in
      Some (Relalg.project (List.rev !keep) renamed)

(* Conditions become selections once all their variables are bound. *)
let apply_ready_conditions bound pending table =
  let ready, still_pending =
    List.partition
      (fun cond ->
        List.for_all (fun v -> List.mem (var_col v) bound) (Logic.Cond.vars cond)
        && List.for_all
             (fun v -> List.mem (tvar_col v) bound)
             (Logic.Cond.tvars cond))
      pending
  in
  if ready = [] then (table, still_pending)
  else begin
    let to_subst = subst_of_row table in
    let filtered =
      Relalg.select
        (fun row ->
          match to_subst row with
          | None -> false
          | Some s ->
              List.for_all
                (fun cond -> Logic.Cond.eval s cond = Some true)
                ready)
        table
    in
    (filtered, still_pending)
  end

(* Join-order heuristic: fold the most selective fragments first.
   Greedy: start from the smallest extension, then repeatedly take the
   smallest remaining atom that shares a variable with what is already
   bound (falling back to the overall smallest when the join graph is
   disconnected and a product is unavoidable). Original body position
   breaks ties, and [atom_col] keeps the original position, so the
   produced bindings are order-insensitive. *)
let atom_cardinality store (atom : Logic.Atom.t) =
  match
    Atom_store.table_for store atom.predicate
      ~arity:(List.length atom.args)
      ~temporal:(Option.is_some atom.time)
  with
  | None -> 0
  | Some table -> Table.cardinal table

let atom_vars (atom : Logic.Atom.t) =
  let term_vars =
    List.filter_map
      (function Logic.Lterm.Var v -> Some (var_col v) | Logic.Lterm.Const _ -> None)
      atom.args
  in
  match atom.time with
  | Some (Logic.Lterm.Tvar v) -> tvar_col v :: term_vars
  | _ -> term_vars

let join_order store (rule : Logic.Rule.t) =
  let items =
    List.mapi (fun i a -> (i, a, atom_cardinality store a, atom_vars a)) rule.body
  in
  let smallest candidates =
    List.fold_left
      (fun best ((i, _, card, _) as item) ->
        match best with
        | Some (bi, _, bcard, _) when (bcard, bi) <= (card, i) -> best
        | _ -> Some item)
      None candidates
  in
  let rec pick bound acc = function
    | [] -> List.rev acc
    | remaining ->
        let connected =
          List.filter
            (fun (_, _, _, vars) -> List.exists (fun v -> List.mem v bound) vars)
            remaining
        in
        let candidates = if connected = [] then remaining else connected in
        let ((i, atom, _, vars) as chosen) =
          match smallest candidates with Some item -> item | None -> assert false
        in
        let remaining = List.filter (fun item -> item != chosen) remaining in
        pick (vars @ bound) ((i, atom) :: acc) remaining
  in
  pick [] [] items

let all store (rule : Logic.Rule.t) =
  let rec loop acc pending = function
    | [] -> (acc, pending)
    | (index, atom) :: rest -> (
        match atom_fragment store index atom with
        | None -> (None, pending)
        | Some fragment -> (
            match acc with
            | None -> (None, pending)
            | Some bindings ->
                let joined =
                  if Table.cardinal bindings = 0 && Table.columns bindings = []
                  then fragment
                  else begin
                    let shared =
                      List.filter
                        (fun c ->
                          (is_var_col c || is_tvar_col c)
                          && List.mem c (Table.columns bindings))
                        (Table.columns fragment)
                    in
                    if shared = [] then Relalg.product bindings fragment
                    else
                      Relalg.hash_join
                        ~on:(List.map (fun c -> (c, c)) shared)
                        bindings fragment
                  end
                in
                let bound = Table.columns joined in
                let joined, pending =
                  apply_ready_conditions bound pending joined
                in
                if Table.cardinal joined = 0 then (None, pending)
                else loop (Some joined) pending rest))
  in
  let start = Table.create ~name:"empty" ~columns:[] in
  let result, pending = loop (Some start) rule.conditions (join_order store rule) in
  match result with
  | None -> []
  | Some bindings ->
      (match pending with
      | [] -> ()
      | c :: _ ->
          (* Rule.make validates safety, so this is unreachable for rules
             built through the public API. *)
          invalid_arg
            (Format.asprintf "rule %s: condition %a has unbound variables"
               rule.name Logic.Cond.pp c));
      let to_subst = subst_of_row bindings in
      let atom_positions =
        List.mapi (fun i _ -> Table.column_index bindings (atom_col i)) rule.body
      in
      Table.fold
        (fun acc row ->
          match to_subst row with
          | None -> acc
          | Some subst ->
              let body_atoms =
                List.map
                  (fun i ->
                    match Value.as_int row.(i) with
                    | Some id -> id
                    | None -> assert false)
                  atom_positions
              in
              { subst; body_atoms } :: acc)
        [] bindings
      |> List.rev
