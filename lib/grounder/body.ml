module Value = Reldb.Value
module Table = Reldb.Table
module Relalg = Reldb.Relalg

type binding = {
  subst : Logic.Subst.t;
  body_atoms : Atom_store.id list;
}

let var_col v = "?" ^ v
let tvar_col v = "!" ^ v
let atom_col i = "#" ^ string_of_int i

let is_var_col c = String.length c > 0 && c.[0] = '?'
let is_tvar_col c = String.length c > 0 && c.[0] = '!'

let col_var c = String.sub c 1 (String.length c - 1)

(* Rebuild a substitution from a bindings row. *)
let subst_of_row table =
  let cols = Table.columns table in
  let typed =
    List.filteri (fun _ c -> is_var_col c || is_tvar_col c) cols
    |> List.map (fun c -> (c, Table.column_index table c))
  in
  fun row ->
    List.fold_left
      (fun subst (c, i) ->
        match subst with
        | None -> None
        | Some s ->
            if is_var_col c then
              match Value.as_term row.(i) with
              | Some term -> Logic.Subst.bind s (col_var c) term
              | None -> None
            else
              match Value.as_interval row.(i) with
              | Some iv -> Logic.Subst.bind_time s (col_var c) iv
              | None -> None)
      (Some Logic.Subst.empty) typed

(* Compile a batch of conditions against a column layout into a filter
   over code rows. [conds] are [(cond, expected)] pairs: body conditions
   expect [true] (keep rows where the condition holds — [None] drops,
   matching eager evaluation); a pushed-down constraint-head condition
   expects [false] (drop only the rows that provably satisfy it, so a
   non-evaluable head still reaches the instance phase and raises there
   exactly as the eager path does). Only the columns the conditions
   actually mention are decoded. *)
let compile_conditions cols conds =
  let positions = List.mapi (fun i c -> (c, i)) cols in
  let needed =
    List.sort_uniq compare
      (List.concat_map
         (fun (cond, _) ->
           List.map (fun v -> `V v) (Logic.Cond.vars cond)
           @ List.map (fun v -> `T v) (Logic.Cond.tvars cond))
         conds)
  in
  let slots =
    List.map
      (fun need ->
        match need with
        | `V v -> (need, List.assoc (var_col v) positions)
        | `T v -> (need, List.assoc (tvar_col v) positions))
      needed
  in
  fun (codes : Value.code array) ->
    let subst =
      List.fold_left
        (fun subst (need, i) ->
          match subst with
          | None -> None
          | Some s -> (
              match need with
              | `V v -> (
                  match Value.decode_term codes.(i) with
                  | Some term -> Logic.Subst.bind s v term
                  | None -> None)
              | `T v -> (
                  match Value.decode_interval codes.(i) with
                  | Some iv -> Logic.Subst.bind_time s v iv
                  | None -> None)))
        (Some Logic.Subst.empty) slots
    in
    match subst with
    | None -> false
    | Some s ->
        List.for_all
          (fun (cond, expected) ->
            if expected then Logic.Cond.eval s cond = Some true
            else Logic.Cond.eval s cond <> Some true)
          conds

(* A condition is ready once every variable it mentions has a column. *)
let split_ready cols pending =
  List.partition
    (fun (cond, _) ->
      List.for_all (fun v -> List.mem (var_col v) cols) (Logic.Cond.vars cond)
      && List.for_all
           (fun v -> List.mem (tvar_col v) cols)
           (Logic.Cond.tvars cond))
    pending

(* Transform one body atom's extension table into a bindings fragment:
   one fused columnar pass selects constants and intra-atom repeated
   variables, renames argument columns to variable columns and keeps
   one column per variable plus the atom-id column. *)
let atom_fragment store index (atom : Logic.Atom.t) =
  let temporal = Option.is_some atom.time in
  let arity = List.length atom.args in
  match Atom_store.table_for store atom.predicate ~arity ~temporal with
  | None -> None
  | Some table ->
      let first_of_var = Hashtbl.create 8 in
      let keep = ref [] in
      let filters = ref [] in
      let unmatchable = ref false in
      List.iteri
        (fun j term ->
          match term with
          | Logic.Lterm.Const c -> (
              match Value.code_opt (Value.term c) with
              | Some code -> filters := `Eq (j, code) :: !filters
              | None -> unmatchable := true)
          | Logic.Lterm.Var v -> (
              match Hashtbl.find_opt first_of_var v with
              | None ->
                  Hashtbl.replace first_of_var v j;
                  keep := (j, var_col v) :: !keep
              | Some first -> filters := `Same (j, first) :: !filters))
        atom.args;
      let tcol = arity in
      (match atom.time with
      | None -> ()
      | Some (Logic.Lterm.Tvar v) -> keep := (tcol, tvar_col v) :: !keep
      | Some (Logic.Lterm.Tconst i) -> (
          match Value.code_opt (Value.interval i) with
          | Some code -> filters := `Eq (tcol, code) :: !filters
          | None -> unmatchable := true)
      | Some (Logic.Lterm.Tinter _ | Logic.Lterm.Thull _) ->
          invalid_arg
            (Printf.sprintf
               "body atom %s: computed intervals are not allowed in bodies"
               atom.predicate));
      keep := (arity + 1, atom_col index) :: !keep;
      if !unmatchable then
        (* A constant that was never interned occurs in no table. *)
        Some
          (Table.create
             ~name:(Table.name table ^ "'")
             ~columns:(List.map snd (List.rev !keep)))
      else
        Some
          (Relalg.filter_project table
             ~name:(Table.name table ^ "'")
             ~filters:(List.rev !filters) ~keep:(List.rev !keep))

(* Join-order heuristic: fold the most selective fragments first.
   Greedy: start from the smallest extension, then repeatedly take the
   smallest remaining atom that shares a variable with what is already
   bound (falling back to the overall smallest when the join graph is
   disconnected and a product is unavoidable). Original body position
   breaks ties, and [atom_col] keeps the original position, so the
   produced bindings are order-insensitive.

   The size of an atom's fragment is not estimated: post-interning, the
   extension tables keep per-value occurrence counts, so an atom with a
   constant argument reads its actual cardinality in O(1) —
   [playsFor(x, Chelsea)@t] costs [count(a1 = Chelsea)] rows, not
   [count(playsFor)]. *)
let atom_cardinality store (atom : Logic.Atom.t) =
  match
    Atom_store.table_for store atom.predicate
      ~arity:(List.length atom.args)
      ~temporal:(Option.is_some atom.time)
  with
  | None -> 0
  | Some table ->
      let narrow acc col value =
        match Value.code_opt value with
        | None -> 0
        | Some code -> min acc (Table.count_for table ~col ~code)
      in
      let card = ref (Table.cardinal table) in
      List.iteri
        (fun j term ->
          match term with
          | Logic.Lterm.Const c -> card := narrow !card j (Value.term c)
          | Logic.Lterm.Var _ -> ())
        atom.args;
      (match atom.time with
      | Some (Logic.Lterm.Tconst i) ->
          card := narrow !card (List.length atom.args) (Value.interval i)
      | _ -> ());
      !card

let atom_vars (atom : Logic.Atom.t) =
  let term_vars =
    List.filter_map
      (function Logic.Lterm.Var v -> Some (var_col v) | Logic.Lterm.Const _ -> None)
      atom.args
  in
  match atom.time with
  | Some (Logic.Lterm.Tvar v) -> tvar_col v :: term_vars
  | _ -> term_vars

let join_order store (rule : Logic.Rule.t) =
  let items =
    List.mapi (fun i a -> (i, a, atom_cardinality store a, atom_vars a)) rule.body
  in
  let smallest candidates =
    List.fold_left
      (fun best ((i, _, card, _) as item) ->
        match best with
        | Some (bi, _, bcard, _) when (bcard, bi) <= (card, i) -> best
        | _ -> Some item)
      None candidates
  in
  let rec pick bound acc = function
    | [] -> List.rev acc
    | remaining ->
        let connected =
          List.filter
            (fun (_, _, _, vars) -> List.exists (fun v -> List.mem v bound) vars)
            remaining
        in
        let candidates = if connected = [] then remaining else connected in
        let ((i, atom, _, vars) as chosen) =
          match smallest candidates with Some item -> item | None -> assert false
        in
        let remaining = List.filter (fun item -> item != chosen) remaining in
        pick (vars @ bound) ((i, atom) :: acc) remaining
  in
  pick [] [] items

(* Evaluate the body as a left-deep join over the fragments, pushing
   conditions down into the first join (or scan) where all their
   variables are bound: the join's emit path evaluates them on the
   assembled row and rejected rows are never stored. [violation] is the
   head condition of a constraint rule with the polarity flipped — with
   it, combinations that satisfy the constraint never materialise, and
   every produced binding is a violation. *)
let plan ?(pool = Prelude.Pool.sequential) ?violation store
    (rule : Logic.Rule.t) =
  let pending0 =
    List.map (fun c -> (c, true)) rule.conditions
    @ match violation with Some c -> [ (c, false) ] | None -> []
  in
  let rec loop acc pending = function
    | [] -> (acc, pending)
    | (index, atom) :: rest -> (
        match atom_fragment store index atom with
        | None -> (None, pending)
        | Some fragment -> (
            match acc with
            | None -> (None, pending)
            | Some bindings ->
                let is_start =
                  Table.cardinal bindings = 0 && Table.columns bindings = []
                in
                let out_cols =
                  if is_start then Table.columns fragment
                  else
                    let bcols = Table.columns bindings in
                    bcols
                    @ List.filter
                        (fun c -> not (List.mem c bcols))
                        (Table.columns fragment)
                in
                let ready, still_pending = split_ready out_cols pending in
                let filter =
                  match ready with
                  | [] -> None
                  | _ -> Some (compile_conditions out_cols ready)
                in
                let joined =
                  if is_start then
                    match filter with
                    | None -> fragment
                    | Some f -> Relalg.select_codes f fragment
                  else begin
                    let shared =
                      List.filter
                        (fun c ->
                          (is_var_col c || is_tvar_col c)
                          && List.mem c (Table.columns bindings))
                        (Table.columns fragment)
                    in
                    if shared = [] then Relalg.product ?filter bindings fragment
                    else
                      Relalg.hash_join ~pool ?filter
                        ~on:(List.map (fun c -> (c, c)) shared)
                        bindings fragment
                  end
                in
                if Table.cardinal joined = 0 then (None, still_pending)
                else loop (Some joined) still_pending rest))
  in
  let start = Table.create ~name:"empty" ~columns:[] in
  let result, pending =
    loop (Some start)
      pending0
      (join_order store rule)
  in
  match result with
  | None -> None
  | Some bindings ->
      (match pending with
      | [] -> ()
      | (c, _) :: _ ->
          (* Rule.make validates safety, so this is unreachable for rules
             built through the public API. *)
          invalid_arg
            (Format.asprintf "rule %s: condition %a has unbound variables"
               rule.name Logic.Cond.pp c));
      Some bindings

(* Stream the bindings straight out of the joined table: the table is
   fully materialised before the first [f] call, so a callback that
   interns new atoms (and thereby grows the extension tables) cannot
   perturb the iteration. At 10^6-fact scale this is what keeps the
   per-binding [Subst] records transient instead of pinned in a
   million-element list. *)
let fold ?pool ?violation store (rule : Logic.Rule.t) ~init ~f =
  match plan ?pool ?violation store rule with
  | None -> init
  | Some bindings ->
      let to_subst = subst_of_row bindings in
      let atom_positions =
        List.mapi (fun i _ -> Table.column_index bindings (atom_col i)) rule.body
      in
      Table.fold
        (fun acc row ->
          match to_subst row with
          | None -> acc
          | Some subst ->
              let body_atoms =
                List.map
                  (fun i ->
                    match Value.as_int row.(i) with
                    | Some id -> id
                    | None -> assert false)
                  atom_positions
              in
              f acc { subst; body_atoms })
        init bindings

let all ?pool ?violation store rule =
  List.rev
    (fold ?pool ?violation store rule ~init:[] ~f:(fun acc b -> b :: acc))
