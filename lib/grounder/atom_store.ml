module Ivec = Prelude.Ivec
module Ground = Logic.Atom.Ground
module Symbol = Kg.Symbol

type id = int

type origin =
  | Evidence of { confidence : float; fact : Kg.Graph.id }
  | Hidden

(* Growable unboxed float vector (per-atom evidence confidence). *)
module Fvec = struct
  type t = { mutable data : float array; mutable len : int }

  let create () = { data = Array.make 64 0.0; len = 0 }

  let push t x =
    if t.len = Array.length t.data then begin
      let grown = Array.make (2 * t.len) 0.0 in
      Array.blit t.data 0 grown 0 t.len;
      t.data <- grown
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let get t i = t.data.(i)
  let set t i x = t.data.(i) <- x
end

(* Atoms live code-packed: one flat int buffer holds, per atom, the
   {!Kg.Symbol} id of its predicate, the symbol ids of its arguments
   and an interval code ([0] = atemporal, else interval id + 1);
   [offsets] maps an atom id to its slice ([size + 1] entries, last one
   a sentinel). A million boxed [Ground.t] records — each a record, an
   argument list and an option — collapse to ~5 flat ints; the boxed
   view is rebuilt on demand by {!atom}.

   The dictionary is open-addressing over the packed codes: one int
   array of atom ids (-1 = empty), probed linearly, comparing candidate
   slices in the flat buffer. No per-entry allocation, no boxed keys. *)
type t = {
  codes : Ivec.t;
  offsets : Ivec.t;
  mutable dict : int array;
  mutable dict_mask : int;
  mutable dict_n : int;
  conf : Fvec.t;  (** meaningful where [origin_fact] >= 0 *)
  origin_fact : Ivec.t;  (** max-confidence evidence fact; -1 = hidden *)
  first_fact : Ivec.t;  (** first interned fact (ordering); -1 = none *)
  more_facts : (id, Kg.Graph.id list) Hashtbl.t;
      (** facts beyond the first, newest first; only multi-fact atoms *)
  db : Reldb.Database.t;
}

let create () =
  let offsets = Ivec.create () in
  Ivec.push offsets 0;
  {
    codes = Ivec.create ();
    offsets;
    dict = Array.make 1024 (-1);
    dict_mask = 1023;
    dict_n = 0;
    conf = Fvec.create ();
    origin_fact = Ivec.create ();
    first_fact = Ivec.create ();
    more_facts = Hashtbl.create 64;
    db = Reldb.Database.create ();
  }

let size t = Ivec.length t.offsets - 1

(* SplitMix-style finaliser over the packed codes (62-bit-safe
   constants; [Hashtbl.hash] would truncate to 30 bits of entropy). *)
let mix_int x =
  let x = x * 0x3C79AC492BA7B653 in
  let x = x lxor (x lsr 29) in
  let x = x * 0x1C69B3F74AC4AE35 in
  x lxor (x lsr 32)

let hash_key key = Array.fold_left (fun h c -> mix_int (h lxor c)) 0x9E3779B9 key

let slice_equal t atom_id key =
  let start = Ivec.get t.offsets atom_id in
  let stop = Ivec.get t.offsets (atom_id + 1) in
  stop - start = Array.length key
  &&
  let rec go i =
    i = Array.length key || (Ivec.get t.codes (start + i) = key.(i) && go (i + 1))
  in
  go 0

(* Probe for [key]: the atom id, or the insertion slot. *)
let dict_find t key =
  let h = hash_key key land max_int in
  let rec probe i =
    match t.dict.(i) with
    | -1 -> `Vacant i
    | atom_id when slice_equal t atom_id key -> `Found atom_id
    | _ -> probe ((i + 1) land t.dict_mask)
  in
  probe (h land t.dict_mask)

let key_of_atom t atom_id =
  let start = Ivec.get t.offsets atom_id in
  Array.init
    (Ivec.get t.offsets (atom_id + 1) - start)
    (fun i -> Ivec.get t.codes (start + i))

let dict_grow t =
  let cap = 2 * Array.length t.dict in
  let dict = Array.make cap (-1) in
  let mask = cap - 1 in
  for atom_id = 0 to size t - 1 do
    let h = hash_key (key_of_atom t atom_id) land max_int in
    let rec place i =
      if dict.(i) = -1 then dict.(i) <- atom_id
      else place ((i + 1) land mask)
    in
    place (h land mask)
  done;
  t.dict <- dict;
  t.dict_mask <- mask

(* Packed encodings. [encode] interns symbols (the writer path);
   [encode_opt] only looks them up — an atom mentioning a never-seen
   symbol cannot be in the store. *)
let time_code = function
  | None -> 0
  | Some i -> Symbol.interval_id i + 1

let encode (atom : Ground.t) =
  let nargs = List.length atom.args in
  let key = Array.make (nargs + 2) 0 in
  key.(0) <- Symbol.term_id (Kg.Term.iri atom.predicate);
  List.iteri (fun i a -> key.(i + 1) <- Symbol.term_id a) atom.args;
  key.(nargs + 1) <- time_code atom.time;
  key

let encode_opt (atom : Ground.t) =
  match Symbol.find_term (Kg.Term.iri atom.predicate) with
  | None -> None
  | Some pred ->
      let nargs = List.length atom.args in
      let key = Array.make (nargs + 2) 0 in
      key.(0) <- pred;
      let ok =
        List.for_all
          (fun (i, a) ->
            match Symbol.find_term a with
            | Some s ->
                key.(i + 1) <- s;
                true
            | None -> false)
          (List.mapi (fun i a -> (i, a)) atom.args)
        &&
        match atom.time with
        | None -> true
        | Some iv -> (
            match Symbol.find_interval iv with
            | Some s ->
                key.(nargs + 1) <- s + 1;
                true
            | None -> false)
      in
      if ok then Some key else None

let atom t atom_id =
  if atom_id < 0 || atom_id >= size t then
    invalid_arg (Printf.sprintf "Atom_store: unknown atom id %d" atom_id);
  let start = Ivec.get t.offsets atom_id in
  let stop = Ivec.get t.offsets (atom_id + 1) in
  let predicate = Kg.Term.to_string (Symbol.term (Ivec.get t.codes start)) in
  let args =
    List.init (stop - start - 2) (fun i ->
        Symbol.term (Ivec.get t.codes (start + 1 + i)))
  in
  let time =
    match Ivec.get t.codes (stop - 1) with
    | 0 -> None
    | c -> Some (Symbol.interval (c - 1))
  in
  Ground.make ?time predicate args

let origin t atom_id =
  match Ivec.get t.origin_fact atom_id with
  | -1 -> Hidden
  | fact -> Evidence { confidence = Fvec.get t.conf atom_id; fact }

let is_evidence t atom_id = Ivec.get t.origin_fact atom_id >= 0

let table_name predicate ~arity ~temporal =
  Printf.sprintf "%s/%d%s" predicate arity (if temporal then "@" else "")

let table_columns arity =
  List.init arity (fun i -> Printf.sprintf "a%d" i) @ [ "t"; "atom" ]

let table_for t predicate ~arity ~temporal =
  Reldb.Database.table t.db (table_name predicate ~arity ~temporal)

let insert_row t (atom : Ground.t) id =
  let arity = List.length atom.args in
  let temporal = Option.is_some atom.time in
  let table =
    Reldb.Database.get_or_create t.db
      ~name:(table_name atom.predicate ~arity ~temporal)
      ~columns:(table_columns arity)
  in
  let row = Array.make (arity + 2) 0 in
  List.iteri
    (fun i a -> row.(i) <- Reldb.Value.code (Reldb.Value.term a))
    atom.args;
  row.(arity) <-
    Reldb.Value.code
      (match atom.time with
      | Some i -> Reldb.Value.interval i
      | None -> Reldb.Value.Null);
  row.(arity + 1) <- Reldb.Value.code (Reldb.Value.int id);
  Reldb.Table.insert_codes table row

let record_fact t id origin =
  match origin with
  | Evidence { fact; _ } ->
      let first = Ivec.get t.first_fact id in
      if first = -1 then Ivec.set t.first_fact id fact
      else if first <> fact then begin
        let more = Option.value (Hashtbl.find_opt t.more_facts id) ~default:[] in
        if not (List.mem fact more) then
          Hashtbl.replace t.more_facts id (fact :: more)
      end
  | Hidden -> ()

let merge_origin t id origin =
  match origin with
  | Hidden -> ()
  | Evidence { confidence; fact } ->
      let upgrade =
        match Ivec.get t.origin_fact id with
        | -1 -> true
        | _ -> confidence > Fvec.get t.conf id
      in
      if upgrade then begin
        Ivec.set t.origin_fact id fact;
        Fvec.set t.conf id confidence
      end

let intern t origin atom =
  let key = encode atom in
  match dict_find t key with
  | `Found id ->
      merge_origin t id origin;
      record_fact t id origin;
      id
  | `Vacant slot ->
      let id = size t in
      Array.iter (fun c -> Ivec.push t.codes c) key;
      Ivec.push t.offsets (Ivec.length t.codes);
      t.dict.(slot) <- id;
      t.dict_n <- t.dict_n + 1;
      if 2 * t.dict_n >= Array.length t.dict then dict_grow t;
      (match origin with
      | Hidden ->
          Ivec.push t.origin_fact (-1);
          Fvec.push t.conf 0.0
      | Evidence { confidence; fact } ->
          Ivec.push t.origin_fact fact;
          Fvec.push t.conf confidence);
      Ivec.push t.first_fact (-1);
      insert_row t atom id;
      record_fact t id origin;
      id

let of_graph graph =
  let t = create () in
  Kg.Graph.iter
    (fun fact q ->
      ignore
        (intern t
           (Evidence { confidence = q.Kg.Quad.confidence; fact })
           (Ground.of_quad q)))
    graph;
  t

let find t atom =
  match encode_opt atom with
  | None -> None
  | Some key -> (
      match dict_find t key with `Found id -> Some id | `Vacant _ -> None)

let evidence_facts t id =
  match Ivec.get t.first_fact id with
  | -1 -> []
  | first ->
      first
      :: List.rev (Option.value (Hashtbl.find_opt t.more_facts id) ~default:[])

let iter f t =
  for id = 0 to size t - 1 do
    f id (atom t id) (origin t id)
  done

let database t = t.db
