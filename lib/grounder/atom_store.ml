module Vec = Prelude.Vec
module Ground = Logic.Atom.Ground

type id = int

type origin =
  | Evidence of { confidence : float; fact : Kg.Graph.id }
  | Hidden

module Atom_table = Hashtbl.Make (struct
  type t = Ground.t

  let equal = Ground.equal
  let hash = Ground.hash
end)

type t = {
  atoms : Ground.t Vec.t;
  origins : origin Vec.t;
  dict : id Atom_table.t;
  db : Reldb.Database.t;
  facts : (id, Kg.Graph.id list) Hashtbl.t;
      (* every graph fact behind an atom, newest first *)
}

let create () =
  {
    atoms = Vec.create ();
    origins = Vec.create ();
    dict = Atom_table.create 4096;
    db = Reldb.Database.create ();
    facts = Hashtbl.create 4096;
  }

let table_name predicate ~arity ~temporal =
  Printf.sprintf "%s/%d%s" predicate arity (if temporal then "@" else "")

let table_columns arity =
  List.init arity (fun i -> Printf.sprintf "a%d" i) @ [ "t"; "atom" ]

let table_for t predicate ~arity ~temporal =
  Reldb.Database.table t.db (table_name predicate ~arity ~temporal)

let insert_row t (atom : Ground.t) id =
  let arity = List.length atom.args in
  let temporal = Option.is_some atom.time in
  let table =
    Reldb.Database.get_or_create t.db
      ~name:(table_name atom.predicate ~arity ~temporal)
      ~columns:(table_columns arity)
  in
  let time_value =
    match atom.time with
    | Some i -> Reldb.Value.interval i
    | None -> Reldb.Value.Null
  in
  Reldb.Table.insert table
    (Array.of_list
       (List.map Reldb.Value.term atom.args @ [ time_value; Reldb.Value.int id ]))

let record_fact t id origin =
  match origin with
  | Evidence { fact; _ } ->
      let existing = Option.value (Hashtbl.find_opt t.facts id) ~default:[] in
      if not (List.mem fact existing) then
        Hashtbl.replace t.facts id (fact :: existing)
  | Hidden -> ()

let intern t origin atom =
  match Atom_table.find_opt t.dict atom with
  | Some id ->
      (match (Vec.get t.origins id, origin) with
      | Hidden, Evidence _ -> Vec.set t.origins id origin
      | Evidence { confidence = c; _ }, Evidence { confidence = c'; _ }
        when c' > c ->
          Vec.set t.origins id origin
      | _ -> ());
      record_fact t id origin;
      id
  | None ->
      let id = Vec.length t.atoms in
      Vec.push t.atoms atom;
      Vec.push t.origins origin;
      Atom_table.replace t.dict atom id;
      insert_row t atom id;
      record_fact t id origin;
      id

let of_graph graph =
  let t = create () in
  Kg.Graph.iter
    (fun fact q ->
      ignore
        (intern t
           (Evidence { confidence = q.Kg.Quad.confidence; fact })
           (Ground.of_quad q)))
    graph;
  t

let find t atom = Atom_table.find_opt t.dict atom

let atom t id = Vec.get t.atoms id

let origin t id = Vec.get t.origins id

let is_evidence t id =
  match origin t id with Evidence _ -> true | Hidden -> false

let size t = Vec.length t.atoms

let iter f t =
  Vec.iteri (fun id atom -> f id atom (Vec.get t.origins id)) t.atoms

let database t = t.db

let evidence_facts t id =
  List.rev (Option.value (Hashtbl.find_opt t.facts id) ~default:[])
