(** Conjunctive-body evaluation over the atom store.

    Grounds a rule's body by a selectivity-ordered relational plan: each
    body atom's extension table becomes a bindings fragment in one fused
    columnar pass (constant arguments, repeated variables and constant
    intervals filter at the code level; argument columns are renamed to
    variable columns), and the fragments are folded with partitioned
    hash joins, smallest actual cardinality first. Numeric and Allen
    conditions are compiled into the join's emit path at the first join
    where their variables are bound, so rows they reject never
    materialise. This is the RockIt grounding architecture with {!Reldb}
    in place of SQL. *)

type binding = {
  subst : Logic.Subst.t;
  body_atoms : Atom_store.id list;
      (** ids of the ground atoms matched by the body, in body order *)
}

val all :
  ?pool:Prelude.Pool.t ->
  ?violation:Logic.Cond.t ->
  Atom_store.t ->
  Logic.Rule.t ->
  binding list
(** Every grounding of the rule's body whose conditions all hold.

    [pool] parallelises the partitioned hash joins (default:
    sequential; the result is bitwise identical at every job count).

    [violation] — a constraint rule's head condition — is pushed into
    the joins with flipped polarity: bindings that provably satisfy it
    are dropped inside the join, so the returned bindings are exactly
    the constraint's violations (plus any binding where the condition
    is not evaluable, which the caller surfaces as an error).

    @raise Invalid_argument when a body atom carries a computed temporal
    term ([Tinter]/[Thull] are only meaningful in heads and conditions). *)

val fold :
  ?pool:Prelude.Pool.t ->
  ?violation:Logic.Cond.t ->
  Atom_store.t ->
  Logic.Rule.t ->
  init:'a ->
  f:('a -> binding -> 'a) ->
  'a
(** Streaming variant of {!all}: folds [f] over the bindings in the
    same order without materialising the list. The joined bindings
    table is complete before the first [f] call, so [f] may intern new
    atoms into the store (growing the extension tables) without
    perturbing the iteration — this is how the closure and instance
    phases keep million-row groundings from pinning a million [Subst]
    records. [all] is [fold] collecting into a list. *)
