(** Conjunctive-body evaluation over the atom store.

    Grounds a rule's body by a left-to-right relational plan: each body
    atom's extension table is filtered (constant arguments, repeated
    variables, constant intervals), renamed to variable columns and
    hash-joined with the bindings accumulated so far; numeric and Allen
    conditions are applied as selections as soon as their variables are
    bound. This is the RockIt grounding architecture with {!Reldb} in
    place of SQL. *)

type binding = {
  subst : Logic.Subst.t;
  body_atoms : Atom_store.id list;
      (** ids of the ground atoms matched by the body, in body order *)
}

val all : Atom_store.t -> Logic.Rule.t -> binding list
(** Every grounding of the rule's body whose conditions all hold.

    @raise Invalid_argument when a body atom carries a computed temporal
    term ([Tinter]/[Thull] are only meaningful in heads and conditions). *)
