(** Dictionary of ground atoms backed by relational tables.

    Every ground atom (evidence from the UTKG, or derived during closure)
    is interned to a dense integer id — the random-variable index of the
    ground Markov network. Each predicate's extension is mirrored in a
    {!Reldb} table so rule bodies can be grounded with relational joins,
    reproducing RockIt's SQL-based grounding architecture. *)

type id = int

type origin =
  | Evidence of { confidence : float; fact : Kg.Graph.id }
      (** translated from a UTKG fact by θ *)
  | Hidden
      (** introduced by an inference-rule head *)

type t

val create : unit -> t

val of_graph : Kg.Graph.t -> t
(** Intern every live fact of the graph as evidence. *)

val intern : t -> origin -> Logic.Atom.Ground.t -> id
(** Id of the atom, creating it if needed. When the atom already exists,
    an [Evidence] origin upgrades a [Hidden] one (and keeps the higher
    confidence of two evidence origins). *)

val find : t -> Logic.Atom.Ground.t -> id option

val atom : t -> id -> Logic.Atom.Ground.t
val origin : t -> id -> origin

val is_evidence : t -> id -> bool

val evidence_facts : t -> id -> Kg.Graph.id list
(** Every graph fact that was interned into this atom, in insertion
    order. Duplicate statements (same triple and interval, possibly
    different confidences) share one atom; a decision about the atom
    applies to all of them. Empty for hidden atoms. *)

val size : t -> int

val iter : (id -> Logic.Atom.Ground.t -> origin -> unit) -> t -> unit

val database : t -> Reldb.Database.t

val table_name : string -> arity:int -> temporal:bool -> string
(** Table naming scheme: one table per (predicate, arity, temporality). *)

val table_for :
  t -> string -> arity:int -> temporal:bool -> Reldb.Table.t option
(** The extension table of a predicate, when any atom of that shape was
    interned. Columns: [a0 .. a{arity-1}], [t] (interval or NULL), [atom]
    (the id). *)
