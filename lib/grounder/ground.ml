module Instance = struct
  type head_state =
    | Derives of Atom_store.id
    | Satisfied
    | Violated

  type t = {
    rule : Logic.Rule.t;
    body_atoms : Atom_store.id list;
    head : head_state;
  }

  let pp store ppf t =
    let pp_atom ppf id = Logic.Atom.Ground.pp ppf (Atom_store.atom store id) in
    Format.fprintf ppf "%s: %a -> " t.rule.Logic.Rule.name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ^ ")
         pp_atom)
      t.body_atoms;
    match t.head with
    | Derives id -> pp_atom ppf id
    | Satisfied -> Format.pp_print_string ppf "(satisfied)"
    | Violated -> Format.pp_print_string ppf "(violated)"
end

type result = {
  instances : Instance.t list;
  derived : Atom_store.id list;
  rounds : int;
}

exception Timed_out of { atoms : int; rounds : int }

let head_atom (rule : Logic.Rule.t) =
  match rule.head with Logic.Rule.Infer a -> Some a | _ -> None

(* Saturate the store under inference rules. Derived atoms are interned as
   Hidden, which inserts them into the extension tables, so subsequent
   rounds see them; the loop stops when a round adds no atom. The
   deadline is polled between rounds — a completed round is the safe
   point: stopping mid-round would leave the extension tables ahead of
   [derived]. *)
let closure ?(max_rounds = 50) ?(deadline = Prelude.Deadline.none)
    ?(pool = Prelude.Pool.sequential) ?log store rules =
  let inference = List.filter Logic.Rule.is_inference rules in
  let n_inference = List.length inference in
  let derived = ref [] in
  let rec loop round =
    if round > max_rounds then
      failwith
        (Printf.sprintf "Grounder.closure: no fixpoint after %d rounds"
           max_rounds);
    if Prelude.Deadline.Faults.active "slow_ground" then
      Obs.event ~level:Obs.Events.Warn "fault.slow_ground"
        [
          ("round", Obs.Events.Int round);
          ("delay_ms", Obs.Events.Int (Prelude.Deadline.Faults.arg "slow_ground"));
        ];
    Prelude.Deadline.Faults.delay "slow_ground";
    if Prelude.Deadline.expired deadline then
      raise
        (Timed_out { atoms = Atom_store.size store; rounds = round - 1 });
    let before = Atom_store.size store in
    let round_candidates = Array.make n_inference [] in
    List.iteri
      (fun ri rule ->
        match head_atom rule with
        | None -> ()
        | Some head ->
            (* Stream the bindings: each instantiable head atom (in
               binding order — not just the newly interned ones) is
               interned on the fly; the candidate list itself is only
               accumulated when a recording caller asked for the log.
               The replay in {!reground} re-decides interning
               dynamically, which is what keeps it exact when a
               retraction makes an atom internable that was already
               present last time. *)
            let rows = ref 0 in
            let candidates_rev = ref [] in
            Body.fold ~pool store rule ~init:()
              ~f:(fun () { Body.subst; _ } ->
                incr rows;
                match Logic.Atom.instantiate subst head with
                | None -> () (* e.g. empty interval intersection *)
                | Some ground ->
                    if log <> None then
                      candidates_rev := ground :: !candidates_rev;
                    if Atom_store.find store ground = None then
                      derived :=
                        Atom_store.intern store Atom_store.Hidden ground
                        :: !derived);
            Obs.count ~n:!rows "ground.join_rows";
            round_candidates.(ri) <- List.rev !candidates_rev)
      inference;
    (match log with
    | None -> ()
    | Some log -> log := round_candidates :: !log);
    let added = Atom_store.size store - before in
    Obs.event ~level:Obs.Events.Debug "ground.round"
      [ ("round", Obs.Events.Int round); ("new_atoms", Obs.Events.Int added) ];
    if added > 0 then loop (round + 1) else round
  in
  let rounds = loop 1 in
  (List.rev !derived, rounds)

let instance_of_binding store (rule : Logic.Rule.t)
    { Body.subst; body_atoms } =
  match rule.head with
  | Logic.Rule.Infer head -> (
      match Logic.Atom.instantiate subst head with
      | None -> None
      | Some ground ->
          let id = Atom_store.intern store Atom_store.Hidden ground in
          Some { Instance.rule; body_atoms; head = Instance.Derives id })
  | Logic.Rule.Require cond -> (
      match Logic.Cond.eval subst cond with
      | Some true -> Some { Instance.rule; body_atoms; head = Instance.Satisfied }
      | Some false -> Some { Instance.rule; body_atoms; head = Instance.Violated }
      | None ->
          invalid_arg
            (Format.asprintf "rule %s: head condition %a not evaluable under %a"
               rule.name Logic.Cond.pp cond Logic.Subst.pp subst))
  | Logic.Rule.Bottom ->
      Some { Instance.rule; body_atoms; head = Instance.Violated }

let emit_result_counters store (result : result) =
  Obs.count ~n:(List.length result.instances) "ground.instances";
  Obs.count ~n:(List.length result.derived) "ground.derived_atoms";
  Obs.count ~n:result.rounds "ground.rounds";
  Obs.count ~n:(Atom_store.size store) "ground.atoms";
  Obs.count ~n:(Kg.Symbol.terms_interned ()) "intern.terms";
  Obs.count ~n:(Kg.Symbol.intervals_interned ()) "intern.intervals"

(* One rule's instance-phase grounding, streamed. Under
   [lazy_constraints], a constraint's head condition is pushed down into
   the body joins with flipped polarity: combinations that satisfy the
   constraint are vetoed inside the join and never materialise, so the
   produced bindings are exactly the violations. The [Satisfied]
   instances are therefore not produced in that mode — sound for the
   engines (both network builders drop them) but visible in statistics,
   hence opt-in. *)
let instances_of_rule ~pool ~lazy_constraints store (rule : Logic.Rule.t) =
  let violation =
    match rule.head with
    | Logic.Rule.Require cond when lazy_constraints -> Some cond
    | _ -> None
  in
  let rows = ref 0 in
  let instances_rev =
    Body.fold ~pool ?violation store rule ~init:[] ~f:(fun acc binding ->
        incr rows;
        match instance_of_binding store rule binding with
        | Some inst -> inst :: acc
        | None -> acc)
  in
  Obs.count ~n:!rows "ground.join_rows";
  List.rev instances_rev

let run ?max_rounds ?(deadline = Prelude.Deadline.none)
    ?(pool = Prelude.Pool.sequential) ?(lazy_constraints = false) store rules =
  let derived, rounds =
    Obs.span "closure" (fun () ->
        closure ?max_rounds ~deadline ~pool store rules)
  in
  if Prelude.Deadline.expired deadline then
    raise (Timed_out { atoms = Atom_store.size store; rounds });
  let instances =
    (* Rules are grounded sequentially in rule order and the parallelism
       lives inside each join (partitioned hash join on [pool]) — the
       same pool must not be used at two nesting levels. Interning the
       results stays sequential in rule order (every Infer head already
       exists at the fixpoint, so this is lookup-only), which keeps
       atom-id assignment deterministic and independent of the job
       count. The closure's rounds interleave joins with interning, and
       that interleaving defines the id order we must preserve. *)
    Obs.span "instances" (fun () ->
        List.concat_map
          (fun rule -> instances_of_rule ~pool ~lazy_constraints store rule)
          rules)
  in
  let result = { instances; derived; rounds } in
  emit_result_counters store result;
  result

(* ------------------------------------------------------------------ *)
(* Delta grounding: record enough of a run to replay it exactly.       *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  snap_store : Atom_store.t;
  snap_rules : Logic.Rule.t list;
  rounds_log : Logic.Atom.Ground.t list array array;
      (** [rounds_log.(r).(i)]: candidate head atoms produced in closure
          round [r+1] by the [i]-th inference rule, in binding order *)
  per_rule : Instance.t list list;
      (** final rule instances, one list per rule in rule order *)
}

let run_record ?max_rounds ?(deadline = Prelude.Deadline.none)
    ?(pool = Prelude.Pool.sequential) ?(lazy_constraints = false) store rules =
  let log = ref [] in
  let derived, rounds =
    Obs.span "closure" (fun () ->
        closure ?max_rounds ~deadline ~pool ~log store rules)
  in
  if Prelude.Deadline.expired deadline then
    raise (Timed_out { atoms = Atom_store.size store; rounds });
  let per_rule =
    Obs.span "instances" (fun () ->
        List.map
          (fun rule -> instances_of_rule ~pool ~lazy_constraints store rule)
          rules)
  in
  let result = { instances = List.concat per_rule; derived; rounds } in
  emit_result_counters store result;
  ( result,
    {
      snap_store = store;
      snap_rules = rules;
      rounds_log = Array.of_list (List.rev !log);
      per_rule;
    } )

let affected_rules ~delta rules =
  (* Transitive closure over predicates: a rule is affected when its
     body mentions an affected predicate; the head predicate of an
     affected inference rule becomes affected in turn (its extension
     may change, re-exciting rules that join over it). Everything else
     sees byte-identical per-round extensions and can be replayed. *)
  let affected_preds = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace affected_preds p ()) delta;
  let body_preds (r : Logic.Rule.t) =
    List.map (fun (a : Logic.Atom.t) -> a.Logic.Atom.predicate) r.Logic.Rule.body
  in
  let rule_touched r =
    List.exists (Hashtbl.mem affected_preds) (body_preds r)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (r : Logic.Rule.t) ->
        match r.Logic.Rule.head with
        | Logic.Rule.Infer head when rule_touched r ->
            let p = head.Logic.Atom.predicate in
            if not (Hashtbl.mem affected_preds p) then begin
              Hashtbl.replace affected_preds p ();
              changed := true
            end
        | _ -> ())
      rules
  done;
  rule_touched

exception Replay_miss

let reground ~snapshot ~affected ?(max_rounds = 50)
    ?(pool = Prelude.Pool.sequential) ?(lazy_constraints = false) store rules =
  let same_rules =
    List.length rules = List.length snapshot.snap_rules
    && List.for_all2
         (fun (a : Logic.Rule.t) (b : Logic.Rule.t) ->
           a.Logic.Rule.name = b.Logic.Rule.name)
         rules snapshot.snap_rules
  in
  if not same_rules then None
  else begin
    let inference = List.filter Logic.Rule.is_inference rules in
    let n_inference = List.length inference in
    let recorded_rounds = Array.length snapshot.rounds_log in
    let derived = ref [] in
    let new_log = ref [] in
    let live_candidates rule =
      match head_atom rule with
      | None -> []
      | Some head ->
          List.rev
            (Body.fold ~pool store rule ~init:[]
               ~f:(fun acc { Body.subst; _ } ->
                 match Logic.Atom.instantiate subst head with
                 | Some g -> g :: acc
                 | None -> acc))
    in
    (* Replay the closure: affected rules re-join live against the new
       store; unaffected rules replay their recorded candidate streams
       (ground-atom values, store-independent). Rounds past the recorded
       horizon reuse the last recorded round — an unaffected rule's
       extension is frozen there, so a fresh run would recompute exactly
       that stream. The intern-if-absent decision is taken dynamically
       either way, which is what makes the replayed store byte-identical
       to a fresh grounding. *)
    let rec loop round =
      if round > max_rounds then
        failwith
          (Printf.sprintf "Grounder.closure: no fixpoint after %d rounds"
             max_rounds);
      let before = Atom_store.size store in
      let round_candidates = Array.make n_inference [] in
      List.iteri
        (fun ri rule ->
          let candidates =
            if affected rule then live_candidates rule
            else if recorded_rounds = 0 then []
            else
              snapshot.rounds_log.(min (round - 1) (recorded_rounds - 1)).(ri)
          in
          round_candidates.(ri) <- candidates;
          List.iter
            (fun ground ->
              if Atom_store.find store ground = None then
                derived :=
                  Atom_store.intern store Atom_store.Hidden ground :: !derived)
            candidates)
        inference;
      new_log := round_candidates :: !new_log;
      if Atom_store.size store - before > 0 then loop (round + 1) else round
    in
    let rounds = Obs.span "closure" (fun () -> loop 1) in
    (* Instance phase: old→new id remap for replayed rules. Any old atom
       still referenced by an unaffected rule must exist in the new
       store (its supporting predicates are untouched); a miss means the
       affected-set computation was wrong, so refuse and let the caller
       fall back to a fresh grounding. *)
    let old_size = Atom_store.size snapshot.snap_store in
    let old_to_new = Array.make old_size (-1) in
    for id = 0 to old_size - 1 do
      match Atom_store.find store (Atom_store.atom snapshot.snap_store id) with
      | Some nid -> old_to_new.(id) <- nid
      | None -> ()
    done;
    let remap id =
      let nid = if id < old_size then old_to_new.(id) else -1 in
      if nid < 0 then raise Replay_miss;
      nid
    in
    let remap_instance (inst : Instance.t) =
      {
        inst with
        Instance.body_atoms = List.map remap inst.Instance.body_atoms;
        head =
          (match inst.Instance.head with
          | Instance.Derives id -> Instance.Derives (remap id)
          | h -> h);
      }
    in
    match
      Obs.span "instances" (fun () ->
          List.map2
            (fun rule old_instances ->
              if affected rule then
                instances_of_rule ~pool ~lazy_constraints store rule
              else List.map remap_instance old_instances)
            rules snapshot.per_rule)
    with
    | per_rule ->
        let result = { instances = List.concat per_rule; derived = List.rev !derived; rounds } in
        emit_result_counters store result;
        Some
          ( result,
            {
              snap_store = store;
              snap_rules = rules;
              rounds_log = Array.of_list (List.rev !new_log);
              per_rule;
            } )
    | exception Replay_miss -> None
  end
