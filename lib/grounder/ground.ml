module Instance = struct
  type head_state =
    | Derives of Atom_store.id
    | Satisfied
    | Violated

  type t = {
    rule : Logic.Rule.t;
    body_atoms : Atom_store.id list;
    head : head_state;
  }

  let pp store ppf t =
    let pp_atom ppf id = Logic.Atom.Ground.pp ppf (Atom_store.atom store id) in
    Format.fprintf ppf "%s: %a -> " t.rule.Logic.Rule.name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ^ ")
         pp_atom)
      t.body_atoms;
    match t.head with
    | Derives id -> pp_atom ppf id
    | Satisfied -> Format.pp_print_string ppf "(satisfied)"
    | Violated -> Format.pp_print_string ppf "(violated)"
end

type result = {
  instances : Instance.t list;
  derived : Atom_store.id list;
  rounds : int;
}

exception Timed_out of { atoms : int; rounds : int }

let head_atom (rule : Logic.Rule.t) =
  match rule.head with Logic.Rule.Infer a -> Some a | _ -> None

(* Saturate the store under inference rules. Derived atoms are interned as
   Hidden, which inserts them into the extension tables, so subsequent
   rounds see them; the loop stops when a round adds no atom. The
   deadline is polled between rounds — a completed round is the safe
   point: stopping mid-round would leave the extension tables ahead of
   [derived]. *)
let closure ?(max_rounds = 50) ?(deadline = Prelude.Deadline.none) store rules
    =
  let inference = List.filter Logic.Rule.is_inference rules in
  let derived = ref [] in
  let rec loop round =
    if round > max_rounds then
      failwith
        (Printf.sprintf "Grounder.closure: no fixpoint after %d rounds"
           max_rounds);
    if Prelude.Deadline.Faults.active "slow_ground" then
      Obs.event ~level:Obs.Events.Warn "fault.slow_ground"
        [
          ("round", Obs.Events.Int round);
          ("delay_ms", Obs.Events.Int (Prelude.Deadline.Faults.arg "slow_ground"));
        ];
    Prelude.Deadline.Faults.delay "slow_ground";
    if Prelude.Deadline.expired deadline then
      raise
        (Timed_out { atoms = Atom_store.size store; rounds = round - 1 });
    let before = Atom_store.size store in
    List.iter
      (fun rule ->
        match head_atom rule with
        | None -> ()
        | Some head ->
            let bindings = Body.all store rule in
            Obs.count ~n:(List.length bindings) "ground.join_rows";
            List.iter
              (fun { Body.subst; _ } ->
                match Logic.Atom.instantiate subst head with
                | None -> () (* e.g. empty interval intersection *)
                | Some ground ->
                    if Atom_store.find store ground = None then
                      derived :=
                        Atom_store.intern store Atom_store.Hidden ground
                        :: !derived)
              bindings)
      inference;
    let added = Atom_store.size store - before in
    Obs.event ~level:Obs.Events.Debug "ground.round"
      [ ("round", Obs.Events.Int round); ("new_atoms", Obs.Events.Int added) ];
    if added > 0 then loop (round + 1) else round
  in
  let rounds = loop 1 in
  (List.rev !derived, rounds)

let instances_of_bindings store (rule : Logic.Rule.t) bindings =
  Obs.count ~n:(List.length bindings) "ground.join_rows";
  List.filter_map
    (fun { Body.subst; body_atoms } ->
      match rule.head with
      | Logic.Rule.Infer head -> (
          match Logic.Atom.instantiate subst head with
          | None -> None
          | Some ground ->
              let id = Atom_store.intern store Atom_store.Hidden ground in
              Some { Instance.rule; body_atoms; head = Instance.Derives id })
      | Logic.Rule.Require cond -> (
          match Logic.Cond.eval subst cond with
          | Some true -> Some { Instance.rule; body_atoms; head = Instance.Satisfied }
          | Some false ->
              Some { Instance.rule; body_atoms; head = Instance.Violated }
          | None ->
              invalid_arg
                (Format.asprintf
                   "rule %s: head condition %a not evaluable under %a"
                   rule.name Logic.Cond.pp cond Logic.Subst.pp subst))
      | Logic.Rule.Bottom ->
          Some { Instance.rule; body_atoms; head = Instance.Violated })
    bindings

let run ?max_rounds ?(deadline = Prelude.Deadline.none)
    ?(pool = Prelude.Pool.sequential) store rules =
  let derived, rounds =
    Obs.span "closure" (fun () -> closure ?max_rounds ~deadline store rules)
  in
  if Prelude.Deadline.expired deadline then
    raise (Timed_out { atoms = Atom_store.size store; rounds });
  let instances =
    (* The store is saturated, so the per-rule joins are read-only and
       run on the pool; interning the results stays sequential in rule
       order (every Infer head already exists at the fixpoint, so this
       is lookup-only), which keeps atom-id assignment deterministic and
       independent of the job count. The closure itself stays
       sequential: its rounds interleave joins with interning, and that
       interleaving defines the id order we must preserve. *)
    Obs.span "instances" (fun () ->
        let all_bindings =
          Prelude.Pool.map pool (fun rule -> Body.all store rule) rules
        in
        List.concat (List.map2 (instances_of_bindings store) rules all_bindings))
  in
  Obs.count ~n:(List.length instances) "ground.instances";
  Obs.count ~n:(List.length derived) "ground.derived_atoms";
  Obs.count ~n:rounds "ground.rounds";
  Obs.count ~n:(Atom_store.size store) "ground.atoms";
  { instances; derived; rounds }
