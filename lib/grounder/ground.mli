(** Grounding driver: closure under inference rules, then rule instances.

    [run store rules] first saturates the store under the inference rules
    (deriving hidden atoms, e.g. worksFor facts from playsFor facts via
    f1), then grounds every rule once, producing the ground rule instances
    from which the MLN and PSL engines build their networks. *)

module Instance : sig
  type head_state =
    | Derives of Atom_store.id
        (** inference instance: body supports this (possibly new) atom *)
    | Satisfied
        (** constraint instance whose head condition holds — trivially
            satisfied, carried for statistics only *)
    | Violated
        (** constraint instance whose head condition fails: the body atoms
            cannot all be true together *)

  type t = {
    rule : Logic.Rule.t;
    body_atoms : Atom_store.id list;
    head : head_state;
  }

  val pp : Atom_store.t -> Format.formatter -> t -> unit
end

type result = {
  instances : Instance.t list;
  derived : Atom_store.id list;   (** hidden atoms introduced by closure *)
  rounds : int;                   (** closure iterations until fixpoint *)
}

exception Timed_out of { atoms : int; rounds : int }
(** Raised when [deadline] expires during grounding. Unlike the anytime
    solvers there is no sound partial answer here — a network built from
    a half-saturated store would silently miss constraints — so the run
    is rejected, carrying how far it got (atoms interned, closure rounds
    completed) for the structured report. *)

val run :
  ?max_rounds:int ->
  ?deadline:Prelude.Deadline.t ->
  ?pool:Prelude.Pool.t ->
  Atom_store.t ->
  Logic.Rule.t list ->
  result
(** [pool] parallelises the per-rule grounding joins after the closure
    (the closure itself is sequential — its rounds interleave joins with
    atom interning); interning happens sequentially in rule order, so the
    produced instances and atom ids are identical at every job count.
    Default: {!Prelude.Pool.sequential}.

    [deadline] (default {!Prelude.Deadline.none}) is polled between
    closure rounds and before the instance joins; expiry raises
    {!Timed_out}. Callers wanting best-effort behaviour simply pass an
    infinite deadline here and budget the solver instead — grounding
    must complete for any sound answer.

    @raise Failure when the closure does not reach a fixpoint within
    [max_rounds] (default 50) iterations.
    @raise Timed_out when [deadline] expires. *)
