(** Grounding driver: closure under inference rules, then rule instances.

    [run store rules] first saturates the store under the inference rules
    (deriving hidden atoms, e.g. worksFor facts from playsFor facts via
    f1), then grounds every rule once, producing the ground rule instances
    from which the MLN and PSL engines build their networks. *)

module Instance : sig
  type head_state =
    | Derives of Atom_store.id
        (** inference instance: body supports this (possibly new) atom *)
    | Satisfied
        (** constraint instance whose head condition holds — trivially
            satisfied, carried for statistics only *)
    | Violated
        (** constraint instance whose head condition fails: the body atoms
            cannot all be true together *)

  type t = {
    rule : Logic.Rule.t;
    body_atoms : Atom_store.id list;
    head : head_state;
  }

  val pp : Atom_store.t -> Format.formatter -> t -> unit
end

type result = {
  instances : Instance.t list;
  derived : Atom_store.id list;   (** hidden atoms introduced by closure *)
  rounds : int;                   (** closure iterations until fixpoint *)
}

exception Timed_out of { atoms : int; rounds : int }
(** Raised when [deadline] expires during grounding. Unlike the anytime
    solvers there is no sound partial answer here — a network built from
    a half-saturated store would silently miss constraints — so the run
    is rejected, carrying how far it got (atoms interned, closure rounds
    completed) for the structured report. *)

val run :
  ?max_rounds:int ->
  ?deadline:Prelude.Deadline.t ->
  ?pool:Prelude.Pool.t ->
  ?lazy_constraints:bool ->
  Atom_store.t ->
  Logic.Rule.t list ->
  result
(** [pool] parallelises the partitioned hash joins inside each rule's
    grounding; rules themselves are processed sequentially in rule order
    (the same pool cannot be nested), so the produced instances and atom
    ids are identical at every job count.
    Default: {!Prelude.Pool.sequential}.

    [lazy_constraints] (default [false]) pushes each constraint's head
    condition down into its body joins with flipped polarity:
    combinations that satisfy the constraint are vetoed inside the join
    and never materialise, so only violations are produced. The
    [Instance.Satisfied] instances disappear from the result in this
    mode — both network builders discard them, so inference is
    unchanged, but callers reading them for statistics must leave the
    flag off.

    [deadline] (default {!Prelude.Deadline.none}) is polled between
    closure rounds and before the instance joins; expiry raises
    {!Timed_out}. Callers wanting best-effort behaviour simply pass an
    infinite deadline here and budget the solver instead — grounding
    must complete for any sound answer.

    @raise Failure when the closure does not reach a fixpoint within
    [max_rounds] (default 50) iterations.
    @raise Timed_out when [deadline] expires. *)

(** {1 Delta grounding}

    The incremental engine re-grounds an edited graph by {e exact
    replay}: the atom store is always rebuilt fresh (cheap, and the only
    way to keep atom ids byte-identical to a from-scratch run), but only
    rules whose body predicates are transitively affected by the edit
    re-run their joins — every other rule replays the candidate streams
    and instances recorded from the previous run. The replayed
    [(store, instances)] pair is byte-identical to what {!run} would
    produce, which is what makes downstream solver caching sound. *)

type snapshot
(** What {!run_record} remembers of a grounding: per-round candidate
    head atoms per inference rule (as ground-atom values, so they are
    store-independent) and the final per-rule instance lists. *)

val run_record :
  ?max_rounds:int ->
  ?deadline:Prelude.Deadline.t ->
  ?pool:Prelude.Pool.t ->
  ?lazy_constraints:bool ->
  Atom_store.t ->
  Logic.Rule.t list ->
  result * snapshot
(** Exactly {!run}, additionally returning the replay snapshot. *)

val affected_rules :
  delta:string list -> Logic.Rule.t list -> Logic.Rule.t -> bool
(** [affected_rules ~delta rules] closes the set of predicates touched
    by an edit ([delta], grounder predicate names) under rule heads: a
    rule is affected when its body mentions an affected predicate, and
    an affected inference rule's head predicate becomes affected in
    turn. Unaffected rules see byte-identical per-round extensions and
    are safe to replay. *)

val reground :
  snapshot:snapshot ->
  affected:(Logic.Rule.t -> bool) ->
  ?max_rounds:int ->
  ?pool:Prelude.Pool.t ->
  ?lazy_constraints:bool ->
  Atom_store.t ->
  Logic.Rule.t list ->
  (result * snapshot) option
(** Replay the recorded grounding against a freshly rebuilt [store]
    (evidence already interned), re-joining only [affected] rules.
    Returns the result — byte-identical to {!run} on the same store —
    plus the snapshot for the next edit, or [None] when the replay
    cannot be proven exact (rule list changed, or a replayed instance
    references an atom the new store lacks); callers then fall back to
    a fresh grounding. Pass the same [lazy_constraints] value as the
    recorded run: replayed rules reuse the recorded instance lists, so
    mixing modes would mix semantics.

    @raise Failure when the replayed closure exceeds [max_rounds]. *)
