module Store = Grounder.Atom_store

type options = {
  config : Hlmrf.config;
  rho : float;
  max_iters : int;
  tol : float;
  threshold : float;
  pool : Prelude.Pool.t;
  deadline : Prelude.Deadline.t;
  ground_deadline : Prelude.Deadline.t;
  decompose : bool;
  solve_cache : Decompose.cache option;
}

let default_options =
  {
    config = Hlmrf.default_config;
    rho = 1.0;
    max_iters = 2_000;
    tol = 1e-4;
    threshold = 0.5;
    pool = Prelude.Pool.sequential;
    deadline = Prelude.Deadline.none;
    ground_deadline = Prelude.Deadline.none;
    decompose = true;
    solve_cache = None;
  }

type stats = {
  atoms : int;
  evidence_atoms : int;
  hidden_atoms : int;
  potentials : int;
  hard_constraints : int;
  closure_rounds : int;
  ground_ms : float;
  solve_ms : float;
  admm : Admm.stats;
  rounding : Rounding.stats;
  status : Prelude.Deadline.status;
}

type outcome = {
  assignment : bool array;
  truth : float array;
  store : Grounder.Atom_store.t;
  instances : Grounder.Ground.Instance.t list;
  model : Hlmrf.t;
  stats : stats;
}

let run_ground ?(options = default_options) store
    (ground_result : Grounder.Ground.result) ~ground_ms =
  let model =
    Obs.span "encode" (fun () ->
        let model =
          Hlmrf.build ~config:options.config store
            ground_result.Grounder.Ground.instances
        in
        Obs.count ~n:model.Hlmrf.num_vars "hlmrf.vars";
        Obs.count
          ~n:(Array.length model.Hlmrf.potentials)
          "hlmrf.potentials";
        Obs.count
          ~n:(Array.length model.Hlmrf.constraints)
          "hlmrf.constraints";
        model)
  in
  (* Seed the consensus at the evidence state. *)
  let init = Array.make model.Hlmrf.num_vars 0.0 in
  Store.iter
    (fun id _ origin ->
      match origin with
      | Store.Evidence { confidence; _ } -> init.(id) <- confidence
      | Store.Hidden -> init.(id) <- 0.0)
    store;
  (* Decompose only under an infinite deadline (mirroring the MLN path):
     budgeted runs keep the global anytime ADMM, and the incremental
     cache is bypassed for them anyway. *)
  let (truth, admm_stats), solve_ms =
    Prelude.Timing.time (fun () ->
        Obs.span "solve" (fun () ->
            if
              options.decompose
              && not (Prelude.Deadline.is_finite options.deadline)
            then
              let truth, stats, _ =
                Decompose.solve ?cache:options.solve_cache ~pool:options.pool
                  ~rho:options.rho ~max_iters:options.max_iters
                  ~tol:options.tol ~init model
              in
              (truth, stats)
            else
              Admm.solve ~rho:options.rho ~max_iters:options.max_iters
                ~tol:options.tol ~init ~pool:options.pool
                ~deadline:options.deadline model))
  in
  if Prelude.Deadline.is_finite options.deadline then
    Obs.gauge "deadline.solve_slack_ms"
      (Prelude.Deadline.remaining_ms options.deadline);
  let assignment, rounding_stats =
    Obs.span "round" (fun () ->
        Rounding.round ~threshold:options.threshold model truth)
  in
  if rounding_stats.Rounding.flipped > 0 || rounding_stats.Rounding.unrepaired > 0
  then
    Obs.event
      ~level:
        (if rounding_stats.Rounding.unrepaired > 0 then Obs.Events.Warn
         else Obs.Events.Info)
      "npsl.rounding_repair"
      [
        ("flipped", Obs.Events.Int rounding_stats.Rounding.flipped);
        ("unrepaired", Obs.Events.Int rounding_stats.Rounding.unrepaired);
      ];
  let evidence_atoms = ref 0 in
  Store.iter
    (fun _ _ origin ->
      match origin with
      | Store.Evidence _ -> incr evidence_atoms
      | Store.Hidden -> ())
    store;
  {
    assignment;
    truth;
    store;
    instances = ground_result.Grounder.Ground.instances;
    model;
    stats =
      {
        atoms = Store.size store;
        evidence_atoms = !evidence_atoms;
        hidden_atoms = Store.size store - !evidence_atoms;
        potentials = Array.length model.Hlmrf.potentials;
        hard_constraints = Array.length model.Hlmrf.constraints;
        closure_rounds = ground_result.Grounder.Ground.rounds;
        ground_ms;
        solve_ms;
        admm = admm_stats;
        rounding = rounding_stats;
        status = admm_stats.Admm.status;
      };
  }

let run_store ?(options = default_options) store rules =
  let (ground_result : Grounder.Ground.result), ground_ms =
    Prelude.Timing.time (fun () ->
        Obs.span "ground" (fun () ->
            Grounder.Ground.run ~deadline:options.ground_deadline
              ~pool:options.pool ~lazy_constraints:true store rules))
  in
  (* Per-stage budget telemetry, only under a finite deadline so
     unbudgeted runs keep byte-identical reports. *)
  if Prelude.Deadline.is_finite options.deadline then
    Obs.gauge "deadline.ground_slack_ms"
      (Prelude.Deadline.remaining_ms options.deadline);
  run_ground ~options store ground_result ~ground_ms

let run ?options graph rules =
  run_store ?options (Store.of_graph graph) rules
