(** Connected-component decomposition of a hinge-loss MRF.

    The PSL twin of {!Mln.Decompose}: the factor graph of a TeCoRe
    grounding splits into per-entity islands, each a small convex
    problem ADMM solves in a handful of iterations. A component's
    solution is a deterministic function of its canonical structural
    form and its slice of the consensus initialisation (ADMM is
    deterministic, see {!Admm.solve}), so solutions are memoisable
    across resolves — the incremental engine's warm start, sound by
    construction rather than by approximate dual reuse. *)

type component = {
  vars : int array;   (** global variable ids, ascending *)
  model : Hlmrf.t;    (** factors remapped to local indices *)
}

type solved = {
  values : float array;
  iterations : int;
  primal_residual : float;
  dual_residual : float;
  converged : bool;
  status : Prelude.Deadline.status;
}

type cache
(** Memoised component solutions, keyed structurally by (potentials,
    constraints, local init); only [Completed] solves are stored. *)

type cache_stats = { entries : int; hits : int; misses : int }

val create_cache : unit -> cache
val clear_cache : cache -> unit
val cache_stats : cache -> cache_stats

type stats = { components : int; cache_hits : int; cache_misses : int }

val split : Hlmrf.t -> component list
(** Partition by connected components of the factor graph, ascending by
    smallest member variable; factors keep their relative order. A
    (degenerate) variable-free factor collapses the split into one
    whole-model component. *)

val solve :
  ?cache:cache ->
  ?pool:Prelude.Pool.t ->
  rho:float ->
  max_iters:int ->
  tol:float ->
  init:float array ->
  Hlmrf.t ->
  float array * Admm.stats * stats
(** Run ADMM per component (sequentially, canonical order; [pool]
    parallelises within each component) and merge: iterations is the
    max, residuals the max, [converged] the conjunction, the objective
    is recomputed globally on the merged truth, the status the worst.
    Emits [solve.components] and [solve.cache_hits]/[solve.cache_misses]
    counters. *)
