(** nPSL: the numerically-extended PSL path of TeCoRe, end to end.

    Mirrors {!Mln.Map_inference} on the scalable side: θ-translate the
    UTKG, ground relationally (numeric and Allen conditions are evaluated
    during grounding — the "numerical extension on top of PSL" the paper
    describes), build the hinge-loss MRF, run consensus ADMM, round. *)

type options = {
  config : Hlmrf.config;
  rho : float;
  max_iters : int;
  tol : float;
  threshold : float;        (** rounding threshold *)
  pool : Prelude.Pool.t;
      (** runs grounding joins and ADMM factor sweeps in parallel; the
          solution is bitwise identical at every job count *)
  deadline : Prelude.Deadline.t;
      (** solve budget, polled between ADMM iterations; on expiry the
          current (box-feasible) iterate is rounded and returned with
          [status = Timed_out] *)
  ground_deadline : Prelude.Deadline.t;
      (** grounding budget; expiry raises {!Grounder.Ground.Timed_out}
          (there is no sound partial grounding) *)
  decompose : bool;
      (** run ADMM per connected component of the factor graph (see
          {!Decompose}); only active under an infinite [deadline].
          Default [true] *)
  solve_cache : Decompose.cache option;
      (** memoises component solutions across runs (the incremental
          engine's warm start). Default [None] *)
}

val default_options : options

type stats = {
  atoms : int;
  evidence_atoms : int;
  hidden_atoms : int;
  potentials : int;
  hard_constraints : int;
  closure_rounds : int;
  ground_ms : float;
  solve_ms : float;
  admm : Admm.stats;
  rounding : Rounding.stats;
  status : Prelude.Deadline.status;
      (** anytime outcome of the solve stage (from {!Admm.solve}) *)
}

type outcome = {
  assignment : bool array;   (** rounded MAP state per atom id *)
  truth : float array;       (** continuous MAP state per atom id *)
  store : Grounder.Atom_store.t;
  instances : Grounder.Ground.Instance.t list;
  model : Hlmrf.t;
  stats : stats;
}

val run : ?options:options -> Kg.Graph.t -> Logic.Rule.t list -> outcome

val run_store :
  ?options:options -> Grounder.Atom_store.t -> Logic.Rule.t list -> outcome

val run_ground :
  ?options:options ->
  Grounder.Atom_store.t ->
  Grounder.Ground.result ->
  ground_ms:float ->
  outcome
(** Encode-and-solve over a grounding computed elsewhere (the
    incremental engine's delta-replay path); [ground_ms] is reported in
    the stats verbatim. *)
