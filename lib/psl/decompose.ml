module Deadline = Prelude.Deadline

type component = {
  vars : int array;
  model : Hlmrf.t;
}

type solved = {
  values : float array;
  iterations : int;
  primal_residual : float;
  dual_residual : float;
  converged : bool;
  status : Deadline.status;
}

(* Canonical structural form of a component: potentials and constraints
   with variables remapped to local indices, plus the local slice of the
   ADMM initialisation (the consensus seed is part of the trajectory, so
   two components are interchangeable only when their seeds match too).
   Structural comparison — a hit requires a byte-identical sub-problem. *)
type key = {
  k_vars : int;
  k_potentials : (float * (int * float) array * float) array;
  k_constraints : ((int * float) array * float * bool) array;
  k_init : float array;
}

type cache = {
  table : (key, solved) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

type cache_stats = { entries : int; hits : int; misses : int }

let create_cache () = { table = Hashtbl.create 256; hits = 0; misses = 0 }

let clear_cache c =
  Hashtbl.reset c.table;
  c.hits <- 0;
  c.misses <- 0

let cache_stats c =
  { entries = Hashtbl.length c.table; hits = c.hits; misses = c.misses }

let max_entries = 65_536

type stats = { components : int; cache_hits : int; cache_misses : int }

let linexp_vars (e : Hlmrf.linexp) = List.map fst e.Hlmrf.coeffs

let lincon_exp = function Hlmrf.Le e -> e | Hlmrf.Eq e -> e

let split (model : Hlmrf.t) =
  let n = model.Hlmrf.num_vars in
  let parent = Array.init n Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb
  in
  let union_exp e =
    match linexp_vars e with
    | [] -> ()
    | v0 :: rest -> List.iter (fun v -> union v0 v) rest
  in
  Array.iter (fun (p : Hlmrf.potential) -> union_exp p.Hlmrf.expr)
    model.Hlmrf.potentials;
  Array.iter (fun c -> union_exp (lincon_exp c)) model.Hlmrf.constraints;
  let members = Hashtbl.create 64 in
  let roots = ref [] in
  for i = 0 to n - 1 do
    let r = find i in
    match Hashtbl.find_opt members r with
    | None ->
        roots := r :: !roots;
        Hashtbl.add members r (ref [ i ])
    | Some l -> l := i :: !l
  done;
  let roots = List.rev !roots in
  let local = Array.make n 0 in
  let atoms_of_root =
    List.map
      (fun r ->
        let vars = Array.of_list (List.rev !(Hashtbl.find members r)) in
        Array.iteri (fun li v -> local.(v) <- li) vars;
        (r, vars))
      roots
  in
  let pots = Hashtbl.create 64 and cons = Hashtbl.create 64 in
  List.iter
    (fun (r, _) ->
      Hashtbl.add pots r (ref []);
      Hashtbl.add cons r (ref []))
    atoms_of_root;
  let remap (e : Hlmrf.linexp) =
    {
      e with
      Hlmrf.coeffs = List.map (fun (v, c) -> (local.(v), c)) e.Hlmrf.coeffs;
    }
  in
  let orphan = ref false in
  Array.iter
    (fun (p : Hlmrf.potential) ->
      match linexp_vars p.Hlmrf.expr with
      | [] -> orphan := true
      | v0 :: _ ->
          let cell = Hashtbl.find pots (find v0) in
          cell := { p with Hlmrf.expr = remap p.Hlmrf.expr } :: !cell)
    model.Hlmrf.potentials;
  Array.iter
    (fun c ->
      match linexp_vars (lincon_exp c) with
      | [] -> orphan := true
      | v0 :: _ ->
          let cell = Hashtbl.find cons (find v0) in
          let c' =
            match c with
            | Hlmrf.Le e -> Hlmrf.Le (remap e)
            | Hlmrf.Eq e -> Hlmrf.Eq (remap e)
          in
          cell := c' :: !cell)
    model.Hlmrf.constraints;
  if !orphan then
    (* A variable-free factor (a constant) belongs to no component;
       splitting would silently drop it from every sub-solve. Degenerate
       and unreachable with the current builder — fall back to one
       component covering the whole model. *)
    [ { vars = Array.init n Fun.id; model } ]
  else
    List.map
      (fun (r, vars) ->
        {
          vars;
          model =
            {
              Hlmrf.num_vars = Array.length vars;
              potentials = Array.of_list (List.rev !(Hashtbl.find pots r));
              constraints = Array.of_list (List.rev !(Hashtbl.find cons r));
            };
        })
      atoms_of_root

let key_of component ~init =
  let canon_exp (e : Hlmrf.linexp) =
    (Array.of_list e.Hlmrf.coeffs, e.Hlmrf.const)
  in
  {
    k_vars = component.model.Hlmrf.num_vars;
    k_potentials =
      Array.map
        (fun (p : Hlmrf.potential) ->
          let coeffs, const = canon_exp p.Hlmrf.expr in
          (p.Hlmrf.weight, coeffs, const))
        component.model.Hlmrf.potentials;
    k_constraints =
      Array.map
        (fun c ->
          let coeffs, const = canon_exp (lincon_exp c) in
          (coeffs, const, match c with Hlmrf.Eq _ -> true | Hlmrf.Le _ -> false))
        component.model.Hlmrf.constraints;
    k_init = init;
  }

let clip01 v = if v < 0.0 then 0.0 else if v > 1.0 then 1.0 else v

let solve ?cache ?(pool = Prelude.Pool.sequential) ~rho ~max_iters ~tol ~init
    (model : Hlmrf.t) =
  let components = split model in
  let truth = Array.make model.Hlmrf.num_vars 0.0 in
  let iterations = ref 0 in
  let primal = ref 0.0 and dual = ref 0.0 in
  let converged = ref true in
  let status = ref Deadline.Completed in
  let hits = ref 0 and misses = ref 0 in
  List.iter
    (fun component ->
      let k = Array.length component.vars in
      let local_init = Array.init k (fun i -> init.(component.vars.(i))) in
      let run () =
        if
          Array.length component.model.Hlmrf.potentials = 0
          && Array.length component.model.Hlmrf.constraints = 0
        then
          {
            values = Array.map clip01 local_init;
            iterations = 0;
            primal_residual = 0.0;
            dual_residual = 0.0;
            converged = true;
            status = Deadline.Completed;
          }
        else
          let values, (s : Admm.stats) =
            Admm.solve ~rho ~max_iters ~tol ~init:local_init ~pool
              component.model
          in
          {
            values;
            iterations = s.Admm.iterations;
            primal_residual = s.Admm.primal_residual;
            dual_residual = s.Admm.dual_residual;
            converged = s.Admm.converged;
            status = s.Admm.status;
          }
      in
      let solved =
        match cache with
        | None ->
            incr misses;
            run ()
        | Some c -> (
            let key = key_of component ~init:local_init in
            match Hashtbl.find_opt c.table key with
            | Some s ->
                incr hits;
                c.hits <- c.hits + 1;
                s
            | None ->
                incr misses;
                c.misses <- c.misses + 1;
                let s = run () in
                if s.status = Deadline.Completed then begin
                  if Hashtbl.length c.table >= max_entries then
                    Hashtbl.reset c.table;
                  Hashtbl.add c.table key s
                end;
                s)
      in
      Array.iteri (fun i v -> truth.(component.vars.(i)) <- v) solved.values;
      iterations := max !iterations solved.iterations;
      primal := Float.max !primal solved.primal_residual;
      dual := Float.max !dual solved.dual_residual;
      converged := !converged && solved.converged;
      status := Deadline.worst !status solved.status)
    components;
  Obs.count ~n:(List.length components) "solve.components";
  Obs.count ~n:!hits "solve.cache_hits";
  Obs.count ~n:!misses "solve.cache_misses";
  let stats =
    {
      Admm.iterations = !iterations;
      primal_residual = !primal;
      dual_residual = !dual;
      converged = !converged;
      objective = Hlmrf.objective model truth;
      status = !status;
    }
  in
  ( truth,
    stats,
    { components = List.length components; cache_hits = !hits; cache_misses = !misses }
  )
