(** Discretisation of a soft MAP state.

    PSL's MAP state is continuous; TeCoRe needs a Boolean keep/remove
    decision per fact. We threshold at 0.5 and then greedily repair any
    hard constraint the rounding broke, flipping the lowest-valued
    positive contributor of each violated constraint — the soft analogue
    of "the fact with inferior weight is removed". *)

type stats = {
  flipped : int;       (** repair flips performed *)
  unrepaired : int;    (** hard constraints still violated (0 normally) *)
}

val round :
  ?threshold:float -> Hlmrf.t -> float array -> bool array * stats
(** Variables pinned by equality constraints are never flipped during
    repair. *)
