type stats = {
  flipped : int;
  unrepaired : int;
}

let bool_value assignment v = if assignment.(v) then 1.0 else 0.0

let eval_bool (e : Hlmrf.linexp) assignment =
  List.fold_left
    (fun acc (v, a) -> acc +. (a *. bool_value assignment v))
    e.const e.coeffs

let round ?(threshold = 0.5) (model : Hlmrf.t) x =
  let assignment = Array.map (fun v -> v >= threshold) x in
  (* Variables pinned to a value by an equality constraint. *)
  let pinned = Array.make model.num_vars false in
  Array.iter
    (fun c ->
      match c with
      | Hlmrf.Eq { coeffs = [ (v, a) ]; const } when a <> 0.0 ->
          pinned.(v) <- true;
          assignment.(v) <- -.const /. a >= 0.5
      | _ -> ())
    model.constraints;
  let flipped = ref 0 in
  let progress = ref true in
  let max_passes = 1 + Array.length model.constraints in
  let passes = ref 0 in
  while !progress && !passes < max_passes do
    progress := false;
    incr passes;
    Array.iter
      (fun c ->
        match c with
        | Hlmrf.Le e when eval_bool e assignment > 1e-9 -> (
            (* Flip the true positive-coefficient variable with the lowest
               soft value (the least-supported fact). *)
            let candidate =
              List.fold_left
                (fun best (v, a) ->
                  if a > 0.0 && assignment.(v) && not pinned.(v) then
                    match best with
                    | Some b when x.(b) <= x.(v) -> best
                    | _ -> Some v
                  else best)
                None e.coeffs
            in
            match candidate with
            | Some v ->
                assignment.(v) <- false;
                incr flipped;
                progress := true
            | None -> ())
        | Hlmrf.Le _ | Hlmrf.Eq _ -> ())
      model.constraints
  done;
  let unrepaired =
    Array.fold_left
      (fun acc c ->
        match c with
        | Hlmrf.Le e when eval_bool e assignment > 1e-9 -> acc + 1
        | _ -> acc)
      0 model.constraints
  in
  (assignment, { flipped = !flipped; unrepaired })
