(** Hinge-loss Markov random fields — the PSL ground model.

    PSL relaxes Boolean atoms to soft truth values in [0, 1] and replaces
    clause satisfaction by Łukasiewicz logic; MAP becomes the convex
    minimisation of a sum of hinge potentials subject to linear
    constraints. The translation of TeCoRe's ground rule instances:

    - inference instance [b1 ∧ ... ∧ bn -> h] with weight [w]:
      potential [w · max(0, Σ x_bi - (n-1) - x_h)] (the implication's
      distance to satisfaction);
    - violated soft constraint instance: [w · max(0, Σ x_bi - (n-1))];
    - violated hard constraint instance: linear constraint
      [Σ x_bi <= n-1];
    - evidence atom with confidence [c < 1]: potential [w_c · (1 - x)]
      with [w_c = c + bonus], pulling the atom toward 1 with strength
      proportional to its confidence;
    - deterministic evidence: constraint [x = 1];
    - hidden atom: prior potential [w_p · x]. *)

type linexp = {
  coeffs : (int * float) list;  (** (variable, coefficient) *)
  const : float;
}

type potential = {
  weight : float;
  expr : linexp;   (** the potential is [weight · max(0, expr)] *)
}

type lincon =
  | Le of linexp   (** expr <= 0 *)
  | Eq of linexp   (** expr = 0 *)

type t = {
  num_vars : int;
  potentials : potential array;
  constraints : lincon array;
}

type config = {
  hidden_prior : float;      (** default 0.05 *)
  evidence_bonus : float;    (** default 0.1 *)
  evidence_hard : bool;      (** confidence-1 evidence pinned to 1 *)
}

val default_config : config

val build :
  ?config:config ->
  Grounder.Atom_store.t ->
  Grounder.Ground.Instance.t list ->
  t

val objective : t -> float array -> float
(** Total weighted hinge loss of a point (lower is better). *)

val constraint_violation : t -> float array -> float
(** Maximum violation of the linear constraints (0 when feasible). *)

val pp : Format.formatter -> t -> unit
