module Vec = Prelude.Vec
module Store = Grounder.Atom_store
module Instance = Grounder.Ground.Instance

type linexp = {
  coeffs : (int * float) list;
  const : float;
}

type potential = {
  weight : float;
  expr : linexp;
}

type lincon =
  | Le of linexp
  | Eq of linexp

type t = {
  num_vars : int;
  potentials : potential array;
  constraints : lincon array;
}

type config = {
  hidden_prior : float;
  evidence_bonus : float;
  evidence_hard : bool;
}

let default_config =
  { hidden_prior = 0.005; evidence_bonus = 0.1; evidence_hard = true }

let eval_linexp e x =
  List.fold_left (fun acc (v, a) -> acc +. (a *. x.(v))) e.const e.coeffs

let build ?(config = default_config) store instances =
  let potentials = Vec.create () in
  let constraints = Vec.create () in
  Store.iter
    (fun id _atom origin ->
      match origin with
      | Store.Evidence { confidence; _ } ->
          if confidence >= 1.0 && config.evidence_hard then
            (* x = 1 *)
            Vec.push constraints (Eq { coeffs = [ (id, 1.0) ]; const = -1.0 })
          else
            (* weight · (1 - x) = weight · max(0, 1 - x) since x <= 1 *)
            Vec.push potentials
              {
                weight = confidence +. config.evidence_bonus;
                expr = { coeffs = [ (id, -1.0) ]; const = 1.0 };
              }
      | Store.Hidden ->
          if config.hidden_prior > 0.0 then
            Vec.push potentials
              {
                weight = config.hidden_prior;
                expr = { coeffs = [ (id, 1.0) ]; const = 0.0 };
              })
    store;
  let seen_hard = Hashtbl.create 1024 in
  List.iter
    (fun { Instance.rule; body_atoms; head } ->
      let n = List.length body_atoms in
      let body_coeffs = List.map (fun id -> (id, 1.0)) body_atoms in
      let body_const = -.float_of_int (n - 1) in
      match (head, rule.Logic.Rule.weight) with
      | Instance.Satisfied, _ -> ()
      | Instance.Violated, Some w ->
          Vec.push potentials
            { weight = w; expr = { coeffs = body_coeffs; const = body_const } }
      | Instance.Violated, None ->
          (* Σ body - (n-1) <= 0 *)
          let key = List.sort compare body_atoms in
          if not (Hashtbl.mem seen_hard (key, -1)) then begin
            Hashtbl.replace seen_hard (key, -1) ();
            Vec.push constraints
              (Le { coeffs = body_coeffs; const = body_const })
          end
      | Instance.Derives h, Some w ->
          Vec.push potentials
            {
              weight = w;
              expr = { coeffs = (h, -1.0) :: body_coeffs; const = body_const };
            }
      | Instance.Derives h, None ->
          let key = List.sort compare body_atoms in
          if not (Hashtbl.mem seen_hard (key, h)) then begin
            Hashtbl.replace seen_hard (key, h) ();
            Vec.push constraints
              (Le { coeffs = (h, -1.0) :: body_coeffs; const = body_const })
          end)
    instances;
  {
    num_vars = Store.size store;
    potentials = Vec.to_array potentials;
    constraints = Vec.to_array constraints;
  }

let objective t x =
  Array.fold_left
    (fun acc p -> acc +. (p.weight *. Float.max 0.0 (eval_linexp p.expr x)))
    0.0 t.potentials

let constraint_violation t x =
  Array.fold_left
    (fun acc c ->
      let v =
        match c with
        | Le e -> Float.max 0.0 (eval_linexp e x)
        | Eq e -> Float.abs (eval_linexp e x)
      in
      Float.max acc v)
    0.0 t.constraints

let pp_linexp ppf e =
  List.iter (fun (v, a) -> Format.fprintf ppf "%+gx%d " a v) e.coeffs;
  if e.const <> 0.0 then Format.fprintf ppf "%+g" e.const

let pp ppf t =
  Format.fprintf ppf "@[<v>hl-mrf: %d vars, %d potentials, %d constraints"
    t.num_vars
    (Array.length t.potentials)
    (Array.length t.constraints);
  Array.iteri
    (fun i p ->
      if i < 8 then
        Format.fprintf ppf "@ %g * max(0, %a)" p.weight pp_linexp p.expr)
    t.potentials;
  Array.iteri
    (fun i c ->
      if i < 8 then
        match c with
        | Le e -> Format.fprintf ppf "@ %a <= 0" pp_linexp e
        | Eq e -> Format.fprintf ppf "@ %a = 0" pp_linexp e)
    t.constraints;
  Format.fprintf ppf "@]"
