(** Consensus ADMM solver for hinge-loss MRF MAP inference.

    The MAP problem of an HL-MRF is convex: minimise the weighted hinge
    losses subject to the linear constraints over [\[0,1\]] variables. We
    use the consensus formulation of Bach et al.: each potential and each
    constraint owns a local copy of its variables; the proximal step for a
    linear hinge and the projection step for a halfspace/hyperplane have
    closed forms; the consensus variable averages the local copies and is
    clipped to the box. This is the algorithm behind the PSL solver the
    paper runs, and the reason the nPSL path scales. *)

type stats = {
  iterations : int;
  primal_residual : float;
  dual_residual : float;
  converged : bool;
  objective : float;
  status : Prelude.Deadline.status;
      (** [Timed_out] when the deadline stopped the iteration before
          convergence or [max_iters]; the returned iterate is always
          box-feasible, just less converged *)
}

val solve :
  ?rho:float ->
  ?max_iters:int ->
  ?tol:float ->
  ?init:float array ->
  ?pool:Prelude.Pool.t ->
  ?deadline:Prelude.Deadline.t ->
  Hlmrf.t ->
  float array * stats
(** Defaults: [rho = 1.0], [max_iters = 2_000], [tol = 1e-4]. [init]
    seeds the consensus vector (clipped to the box); by default 0.5
    everywhere.

    [pool] (default {!Prelude.Pool.sequential}) parallelises the
    per-factor proximal steps and the dual update over fixed-size factor
    blocks; the consensus averaging stays sequential. Partial residual
    sums are accumulated per block and reduced in block order, so the
    iterates — and the returned solution — are bitwise identical at
    every job count.

    [deadline] (default {!Prelude.Deadline.none}) is polled between
    iterations; on expiry the current consensus iterate is returned
    with [status = Timed_out]. *)
