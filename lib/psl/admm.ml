type stats = {
  iterations : int;
  primal_residual : float;
  dual_residual : float;
  converged : bool;
  objective : float;
  status : Prelude.Deadline.status;
}

type kind =
  | Hinge of float  (* weight *)
  | Con_le
  | Con_eq

type factor = {
  kind : kind;
  vars : int array;
  coeffs : float array;
  const : float;
  norm_sq : float;
  y : float array;  (* local copy *)
  u : float array;  (* scaled dual *)
}

let factor_of_potential (p : Hlmrf.potential) =
  let vars = Array.of_list (List.map fst p.expr.coeffs) in
  let coeffs = Array.of_list (List.map snd p.expr.coeffs) in
  {
    kind = Hinge p.weight;
    vars;
    coeffs;
    const = p.expr.const;
    norm_sq = Array.fold_left (fun acc a -> acc +. (a *. a)) 0.0 coeffs;
    y = Array.make (Array.length vars) 0.0;
    u = Array.make (Array.length vars) 0.0;
  }

let factor_of_constraint (c : Hlmrf.lincon) =
  let expr, kind =
    match c with Hlmrf.Le e -> (e, Con_le) | Hlmrf.Eq e -> (e, Con_eq)
  in
  let vars = Array.of_list (List.map fst expr.coeffs) in
  let coeffs = Array.of_list (List.map snd expr.coeffs) in
  {
    kind;
    vars;
    coeffs;
    const = expr.const;
    norm_sq = Array.fold_left (fun acc a -> acc +. (a *. a)) 0.0 coeffs;
    y = Array.make (Array.length vars) 0.0;
    u = Array.make (Array.length vars) 0.0;
  }

let dot coeffs v =
  let acc = ref 0.0 in
  Array.iteri (fun i a -> acc := !acc +. (a *. v.(i))) coeffs;
  !acc

(* argmin_y f(y) + rho/2 ||y - v||^2 for one factor, written into f.y. *)
let prox rho f v =
  let k = Array.length f.vars in
  let value = dot f.coeffs v +. f.const in
  let project () =
    (* Euclidean projection of v onto the hyperplane a.y + c = 0. *)
    let step = value /. f.norm_sq in
    for i = 0 to k - 1 do
      f.y.(i) <- v.(i) -. (step *. f.coeffs.(i))
    done
  in
  match f.kind with
  | Con_eq -> if f.norm_sq = 0.0 then Array.blit v 0 f.y 0 k else project ()
  | Con_le ->
      if value <= 0.0 || f.norm_sq = 0.0 then Array.blit v 0 f.y 0 k
      else project ()
  | Hinge w ->
      if f.norm_sq = 0.0 then Array.blit v 0 f.y 0 k
      else begin
        (* Active-hinge candidate: gradient step of the linear part. *)
        let shift = w /. rho in
        let candidate_value = value -. (shift *. f.norm_sq) in
        if candidate_value >= 0.0 then
          for i = 0 to k - 1 do
            f.y.(i) <- v.(i) -. (shift *. f.coeffs.(i))
          done
        else if value <= 0.0 then Array.blit v 0 f.y 0 k
        else project ()
      end

let clip01 x = Float.min 1.0 (Float.max 0.0 x)

(* Fixed block size for the parallel factor sweeps. The chunk boundaries
   depend on this constant alone — never on the job count — so per-chunk
   floating-point partial sums reduce in the same association at any
   parallelism and the iterates are bitwise identical. *)
let block = 256

let solve ?(rho = 1.0) ?(max_iters = 2_000) ?(tol = 1e-4) ?init
    ?(pool = Prelude.Pool.sequential) ?(deadline = Prelude.Deadline.none)
    (model : Hlmrf.t) =
  let n = model.num_vars in
  let factors =
    Array.append
      (Array.map factor_of_potential model.potentials)
      (Array.map factor_of_constraint model.constraints)
  in
  let z =
    match init with
    | Some x -> Array.map clip01 x
    | None -> Array.make n 0.5
  in
  (* How many local copies each variable has (for averaging). *)
  let copies = Array.make n 0 in
  Array.iter
    (fun f -> Array.iter (fun v -> copies.(v) <- copies.(v) + 1) f.vars)
    factors;
  (* Initialise local copies at the consensus value. *)
  Array.iter
    (fun f -> Array.iteri (fun i v -> f.y.(i) <- z.(v)) f.vars)
    factors;
  let num_factors = Array.length factors in
  let num_blocks = (num_factors + block - 1) / block in
  let pr_parts = Array.make (max 1 num_blocks) 0.0 in
  let sums = Array.make n 0.0 in
  let z_old = Array.make n 0.0 in
  let iterations = ref 0 in
  let primal = ref infinity in
  let dual = ref infinity in
  let converged = ref false in
  let halted = ref false in
  let observing = Obs.enabled () in
  (* Convergence trail: (absolute ms, objective at the current iterate),
     every 8 iterations — the objective pass costs about one factor
     sweep, so it stays off the path unless observability is on. *)
  let trail = ref [] in
  (* Deadline polled between iterations: the consensus vector [z] is a
     feasible-by-construction (box-clipped) iterate after every sweep,
     so any iteration boundary is a safe stopping point. *)
  while (not !converged) && (not !halted) && !iterations < max_iters do
    if Prelude.Deadline.expired deadline then halted := true
    else begin
    incr iterations;
    (* Local proximal steps. Factors are independent given the consensus
       [z] (each writes only its own [y]), so the sweep fans out over
       fixed-size blocks. *)
    Prelude.Pool.for_ pool ~chunk:block num_factors (fun fi ->
        let f = factors.(fi) in
        let k = Array.length f.vars in
        let v = Array.init k (fun i -> z.(f.vars.(i)) -. f.u.(i)) in
        prox rho f v);
    (* Consensus update: average local copies plus duals, clipped.
       Sequential — the per-variable sums overlap across factors. *)
    Array.blit z 0 z_old 0 n;
    Array.fill sums 0 n 0.0;
    Array.iter
      (fun f ->
        Array.iteri
          (fun i v -> sums.(v) <- sums.(v) +. f.y.(i) +. f.u.(i))
          f.vars)
      factors;
    for v = 0 to n - 1 do
      if copies.(v) > 0 then
        z.(v) <- clip01 (sums.(v) /. float_of_int copies.(v))
      (* variables in no factor keep their initial value *)
    done;
    (* Dual update and primal residual: per-block partial sums (a block
       is processed by one worker), reduced sequentially in block order
       so the residual is bitwise identical at every job count. *)
    Array.fill pr_parts 0 (Array.length pr_parts) 0.0;
    Prelude.Pool.for_ pool ~chunk:block num_factors (fun fi ->
        let f = factors.(fi) in
        let b = fi / block in
        Array.iteri
          (fun i v ->
            let r = f.y.(i) -. z.(v) in
            f.u.(i) <- f.u.(i) +. r;
            pr_parts.(b) <- pr_parts.(b) +. (r *. r))
          f.vars);
    let pr = ref 0.0 in
    for b = 0 to num_blocks - 1 do
      pr := !pr +. pr_parts.(b)
    done;
    let du = ref 0.0 in
    for v = 0 to n - 1 do
      let d = z.(v) -. z_old.(v) in
      du := !du +. (float_of_int copies.(v) *. d *. d)
    done;
    primal := sqrt !pr;
    dual := rho *. sqrt !du;
    let scale = sqrt (float_of_int (max 1 n)) in
    if !primal <= tol *. scale && !dual <= tol *. scale then converged := true;
    if observing && !iterations land 7 = 0 then
      trail := (Prelude.Timing.now_ms (), Hlmrf.objective model z) :: !trail
    end
  done;
  let objective = Hlmrf.objective model z in
  Obs.count ~n:!iterations "admm.iterations";
  Obs.gauge "admm.primal_residual" !primal;
  Obs.gauge "admm.dual_residual" !dual;
  Obs.record "admm.iters_per_solve" (float_of_int !iterations);
  if observing then begin
    (* Objective over time, lowered to a running minimum: ADMM iterates
       are not monotone, the best-so-far curve is. *)
    let samples =
      List.rev ((Prelude.Timing.now_ms (), objective) :: !trail)
    in
    ignore
      (List.fold_left
         (fun running (t, v) ->
           let running = Float.min running v in
           Obs.sample "admm.convergence" ~t_ms:t ~v:running;
           running)
         infinity samples);
    Obs.event ~level:Obs.Events.Debug "admm.solve"
      [
        ("iterations", Obs.Events.Int !iterations);
        ("converged", Obs.Events.Bool !converged);
        ("primal_residual", Obs.Events.Float !primal);
        ("dual_residual", Obs.Events.Float !dual);
      ]
  end;
  ( z,
    {
      iterations = !iterations;
      primal_residual = !primal;
      dual_residual = !dual;
      converged = !converged;
      objective;
      status =
        (if !halted then Prelude.Deadline.Timed_out
         else Prelude.Deadline.Completed);
    } )
