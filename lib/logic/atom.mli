(** Atoms: possibly-temporal predicate applications.

    A quad [(s, p, o, i)] of the UTKG is translated by θ into the ground
    atom [p(s, o)@i]; rules and constraints use patterns with variables,
    e.g. [coach(?x, ?y)@?t]. Atoms without a temporal argument (such as
    [type(?x, TeenPlayer)] in rule f3) are supported as atemporal. *)

type t = {
  predicate : string;
  args : Lterm.t list;
  time : Lterm.ttime option;
}

val make : ?time:Lterm.ttime -> string -> Lterm.t list -> t

val quad_pattern :
  string -> subject:Lterm.t -> object_:Lterm.t -> time:Lterm.ttime -> t
(** The binary temporal pattern used for KG predicates:
    [quad_pattern p ~subject ~object_ ~time] is [p(subject, object_)@time]. *)

val arity : t -> int

val is_ground : t -> bool

val vars : t -> string list
(** Object variables, in order of first occurrence, without duplicates. *)

val tvars : t -> string list

val apply : Subst.t -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

(** {1 Ground atoms}

    Fully instantiated atoms, the nodes of the ground Markov network. *)

module Ground : sig
  type t = {
    predicate : string;
    args : Kg.Term.t list;
    time : Kg.Interval.t option;
  }

  val make : ?time:Kg.Interval.t -> string -> Kg.Term.t list -> t

  val of_quad : Kg.Quad.t -> t
  (** θ on a single fact: [(s,p,o,i)] becomes [p(s,o)@i]. The predicate
      name is the rendered form of the quad's predicate term. *)

  val to_quad : ?confidence:float -> t -> Kg.Quad.t option
  (** Inverse of {!of_quad} for binary temporal atoms; [None] for
      atemporal or non-binary atoms. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

val instantiate : Subst.t -> t -> Ground.t option
(** Fully ground under a substitution; [None] when a variable is unbound
    or a computed interval is empty. *)

val match_ground : t -> Ground.t -> Subst.t -> Subst.t option
(** One-sided unification: extend the substitution so the pattern equals
    the ground atom, if possible. Computed temporal terms ([Tinter], ...)
    are not invertible and only match when already fully bound. *)
