(** Weighted temporal inference rules and constraints.

    A rule has the paper's shape [Body ∧ \[Condition\] → Head]:
    - the body is a conjunction of atoms plus evaluable conditions;
    - the head is an atom (inference rule, e.g. f1–f3), a condition
      (constraint, e.g. c1–c2: [→ before(t,t')]), an object equality
      (equality-generating dependency, c3: [→ y = z]) or [⊥] (denial).

    The weight is a positive real; [None] means hard ([w = ∞]). *)

type head =
  | Infer of Atom.t       (** derive a new atom *)
  | Require of Cond.t     (** the condition must hold for the body *)
  | Bottom                (** the body is forbidden *)

type t = {
  name : string;
  weight : float option;  (** [None] = hard constraint *)
  body : Atom.t list;     (** conjunctive body, at least one atom *)
  conditions : Cond.t list;
  head : head;
}

exception Ill_formed of string

val make :
  ?weight:float ->
  ?conditions:Cond.t list ->
  name:string ->
  body:Atom.t list ->
  head ->
  t
(** @raise Ill_formed when the body is empty, the weight is not positive,
    or the rule is unsafe (see {!check_safety}). *)

val is_hard : t -> bool
val is_inference : t -> bool
(** True for [Infer _] heads, false for constraints. *)

val check_safety : t -> (unit, string) result
(** Range restriction: every object variable of the head and of every
    condition occurs in a body atom; every temporal variable of the head
    and conditions occurs as a body atom's time. *)

val body_vars : t -> string list
val body_tvars : t -> string list

val pp : Format.formatter -> t -> unit
(** Paper-style rendering, e.g.
    [f1: playsFor(?x, ?y)@?t -> worksFor(?x, ?y)@?t  w=2.5]. *)

val to_string : t -> string
