module Smap = Map.Make (String)

type t = {
  objects : Kg.Term.t Smap.t;
  times : Kg.Interval.t Smap.t;
}

let empty = { objects = Smap.empty; times = Smap.empty }

let bind s v c =
  match Smap.find_opt v s.objects with
  | Some c' -> if Kg.Term.equal c c' then Some s else None
  | None -> Some { s with objects = Smap.add v c s.objects }

let bind_time s v i =
  match Smap.find_opt v s.times with
  | Some i' -> if Kg.Interval.equal i i' then Some s else None
  | None -> Some { s with times = Smap.add v i s.times }

let find s v = Smap.find_opt v s.objects
let find_time s v = Smap.find_opt v s.times

let apply s term =
  match term with
  | Lterm.Var v -> (
      match find s v with Some c -> Lterm.Const c | None -> term)
  | Lterm.Const _ -> term

let rec apply_time s tt =
  match tt with
  | Lterm.Tvar v -> (
      match find_time s v with Some i -> Lterm.Tconst i | None -> tt)
  | Lterm.Tconst _ -> tt
  | Lterm.Tinter (a, b) -> Lterm.Tinter (apply_time s a, apply_time s b)
  | Lterm.Thull (a, b) -> Lterm.Thull (apply_time s a, apply_time s b)

let eval_term s = function
  | Lterm.Var v -> find s v
  | Lterm.Const c -> Some c

let rec eval_time s = function
  | Lterm.Tvar v -> find_time s v
  | Lterm.Tconst i -> Some i
  | Lterm.Tinter (a, b) -> (
      match (eval_time s a, eval_time s b) with
      | Some ia, Some ib -> Kg.Interval.intersect ia ib
      | _ -> None)
  | Lterm.Thull (a, b) -> (
      match (eval_time s a, eval_time s b) with
      | Some ia, Some ib -> Some (Kg.Interval.hull ia ib)
      | _ -> None)

let domain s = List.map fst (Smap.bindings s.objects)
let time_domain s = List.map fst (Smap.bindings s.times)

let pp ppf s =
  Format.fprintf ppf "{";
  Smap.iter
    (fun v c -> Format.fprintf ppf "%s=%a " v Kg.Term.pp c)
    s.objects;
  Smap.iter
    (fun v i -> Format.fprintf ppf "%s=%a " v Kg.Interval.pp i)
    s.times;
  Format.fprintf ppf "}"
