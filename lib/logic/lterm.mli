(** Logical terms: variables and constants.

    The translation θ maps a UTKG into a function-free first-order
    knowledge base, so terms are either variables (to be grounded) or
    constants drawn from the KG's Herbrand universe. Temporal arguments
    are kept in a separate sort ({!ttime}) because rule heads may
    {e compute} intervals (e.g. [t'' = t ∩ t'] in rule f2). *)

type t =
  | Var of string          (** object variable, e.g. [x] *)
  | Const of Kg.Term.t     (** constant from the KG *)

type ttime =
  | Tvar of string                    (** temporal variable, e.g. [t] *)
  | Tconst of Kg.Interval.t           (** explicit interval *)
  | Tinter of ttime * ttime           (** interval intersection [t ∩ t'] *)
  | Thull of ttime * ttime            (** smallest cover of both *)

val var : string -> t
val const : Kg.Term.t -> t
val iri : string -> t
(** Constant IRI shorthand. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val is_var : t -> bool

val vars : t -> string list
(** Free object variables (0 or 1 elements). *)

val tvars : ttime -> string list
(** Free temporal variables, left to right, without duplicates. *)

val pp : Format.formatter -> t -> unit
val pp_time : Format.formatter -> ttime -> unit
