(** Substitutions: bindings for object and temporal variables.

    Grounding a rule means extending a substitution atom by atom until all
    variables are bound, then evaluating the rule's numeric and Allen
    conditions under it. *)

type t

val empty : t

val bind : t -> string -> Kg.Term.t -> t option
(** [bind s v c] extends the substitution; returns [None] when [v] is
    already bound to a different constant (unification failure). *)

val bind_time : t -> string -> Kg.Interval.t -> t option

val find : t -> string -> Kg.Term.t option
val find_time : t -> string -> Kg.Interval.t option

val apply : t -> Lterm.t -> Lterm.t
(** Replace bound variables by their constants. *)

val apply_time : t -> Lterm.ttime -> Lterm.ttime

val eval_term : t -> Lterm.t -> Kg.Term.t option
(** Fully evaluate to a constant; [None] if an unbound variable remains. *)

val eval_time : t -> Lterm.ttime -> Kg.Interval.t option
(** Evaluate a temporal term, computing intersections and hulls. An empty
    intersection yields [None] (the rule instance does not fire). *)

val domain : t -> string list
val time_domain : t -> string list

val pp : Format.formatter -> t -> unit
