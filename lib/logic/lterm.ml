type t =
  | Var of string
  | Const of Kg.Term.t

type ttime =
  | Tvar of string
  | Tconst of Kg.Interval.t
  | Tinter of ttime * ttime
  | Thull of ttime * ttime

let var v = Var v
let const c = Const c
let iri s = Const (Kg.Term.iri s)

let equal a b =
  match (a, b) with
  | Var x, Var y -> String.equal x y
  | Const x, Const y -> Kg.Term.equal x y
  | (Var _ | Const _), _ -> false

let compare a b =
  match (a, b) with
  | Var x, Var y -> String.compare x y
  | Const x, Const y -> Kg.Term.compare x y
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1

let is_var = function Var _ -> true | Const _ -> false

let vars = function Var v -> [ v ] | Const _ -> []

let rec tvars_acc acc = function
  | Tvar v -> if List.mem v acc then acc else v :: acc
  | Tconst _ -> acc
  | Tinter (a, b) | Thull (a, b) -> tvars_acc (tvars_acc acc a) b

let tvars t = List.rev (tvars_acc [] t)

let pp ppf = function
  | Var v -> Format.fprintf ppf "?%s" v
  | Const c -> Kg.Term.pp ppf c

let rec pp_time ppf = function
  | Tvar v -> Format.fprintf ppf "?%s" v
  | Tconst i -> Kg.Interval.pp ppf i
  | Tinter (a, b) -> Format.fprintf ppf "(%a n %a)" pp_time a pp_time b
  | Thull (a, b) -> Format.fprintf ppf "(%a u %a)" pp_time a pp_time b
