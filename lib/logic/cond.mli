(** Numeric and temporal conditions of rules and constraints.

    These are the "numerical constraints" of the MLN extension the paper
    builds on (Chekol et al., ECAI 2016): Allen relations between temporal
    terms, arithmetic comparisons over interval endpoints and numeric
    constants, and (in)equalities between object terms. Conditions are
    evaluated during grounding — they never become random variables. *)

type arith =
  | Num of int                    (** integer literal *)
  | Start_of of Lterm.ttime       (** left endpoint of an interval *)
  | End_of of Lterm.ttime         (** right endpoint of an interval *)
  | Length_of of Lterm.ttime      (** number of covered time points *)
  | Value_of of Lterm.t           (** numeric value of an object term *)
  | Add of arith * arith
  | Sub of arith * arith

type cmp = Lt | Le | Gt | Ge | Eq_cmp | Ne_cmp

type t =
  | Allen of Kg.Allen.Set.t * Lterm.ttime * Lterm.ttime
      (** e.g. [overlaps(t, t')], [disjoint(t, t')] *)
  | Cmp of cmp * arith * arith
      (** e.g. [start(t) - start(t') < 20] *)
  | Eq of Lterm.t * Lterm.t       (** object equality [y = z] *)
  | Neq of Lterm.t * Lterm.t      (** object inequality [y != z] *)

val allen : Kg.Allen.relation -> Lterm.ttime -> Lterm.ttime -> t
val allen_set : Kg.Allen.Set.t -> Lterm.ttime -> Lterm.ttime -> t

val vars : t -> string list
(** Free object variables. *)

val tvars : t -> string list
(** Free temporal variables. *)

val eval : Subst.t -> t -> bool option
(** Truth value under a substitution; [None] when some variable is still
    unbound or a numeric view does not exist (e.g. [Value_of] of a
    non-numeric constant, an empty computed interval). *)

val negate : t -> t
(** Logical negation (comparison flip, Allen-set complement). *)

val pp : Format.formatter -> t -> unit
