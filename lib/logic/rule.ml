type head =
  | Infer of Atom.t
  | Require of Cond.t
  | Bottom

type t = {
  name : string;
  weight : float option;
  body : Atom.t list;
  conditions : Cond.t list;
  head : head;
}

exception Ill_formed of string

let is_hard r = Option.is_none r.weight

let is_inference r = match r.head with Infer _ -> true | _ -> false

let dedup l =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.replace seen v ();
        true
      end)
    l

let body_vars r = dedup (List.concat_map Atom.vars r.body)

let body_tvars r = dedup (List.concat_map Atom.tvars r.body)

let check_safety r =
  let bvars = body_vars r in
  let btvars = body_tvars r in
  let head_vars, head_tvars =
    match r.head with
    | Infer a -> (Atom.vars a, Atom.tvars a)
    | Require c -> (Cond.vars c, Cond.tvars c)
    | Bottom -> ([], [])
  in
  let cond_vars = List.concat_map Cond.vars r.conditions in
  let cond_tvars = List.concat_map Cond.tvars r.conditions in
  let unbound =
    List.filter (fun v -> not (List.mem v bvars)) (head_vars @ cond_vars)
  in
  let unbound_t =
    List.filter (fun v -> not (List.mem v btvars)) (head_tvars @ cond_tvars)
  in
  match (dedup unbound, dedup unbound_t) with
  | [], [] -> Ok ()
  | vs, ts ->
      Error
        (Printf.sprintf "unsafe rule %s: unbound variable(s) %s" r.name
           (String.concat ", "
              (List.map (fun v -> "?" ^ v) (vs @ ts))))

let make ?weight ?(conditions = []) ~name ~body head =
  if body = [] then raise (Ill_formed (name ^ ": empty body"));
  (match weight with
  | Some w when not (w > 0.0) ->
      raise (Ill_formed (Printf.sprintf "%s: weight %g not positive" name w))
  | _ -> ());
  let r = { name; weight; body; conditions; head } in
  match check_safety r with
  | Ok () -> r
  | Error msg -> raise (Ill_formed msg)

let pp_head ppf = function
  | Infer a -> Atom.pp ppf a
  | Require c -> Cond.pp ppf c
  | Bottom -> Format.pp_print_string ppf "false"

let pp ppf r =
  let pp_sep ppf () = Format.pp_print_string ppf " ^ " in
  Format.fprintf ppf "%s: %a" r.name
    (Format.pp_print_list ~pp_sep Atom.pp)
    r.body;
  if r.conditions <> [] then
    Format.fprintf ppf " ^ %a"
      (Format.pp_print_list ~pp_sep Cond.pp)
      r.conditions;
  Format.fprintf ppf " -> %a" pp_head r.head;
  match r.weight with
  | None -> Format.fprintf ppf "  [hard]"
  | Some w -> Format.fprintf ppf "  w=%g" w

let to_string r = Format.asprintf "%a" pp r
