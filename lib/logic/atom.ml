type t = {
  predicate : string;
  args : Lterm.t list;
  time : Lterm.ttime option;
}

let make ?time predicate args = { predicate; args; time }

let quad_pattern predicate ~subject ~object_ ~time =
  { predicate; args = [ subject; object_ ]; time = Some time }

let arity a = List.length a.args

let is_ground a =
  List.for_all (fun t -> not (Lterm.is_var t)) a.args
  && match a.time with
     | None | Some (Lterm.Tconst _) -> true
     | Some _ -> false

let vars a =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  List.iter
    (fun term ->
      List.iter
        (fun v ->
          if not (Hashtbl.mem seen v) then begin
            Hashtbl.replace seen v ();
            out := v :: !out
          end)
        (Lterm.vars term))
    a.args;
  List.rev !out

let tvars a =
  match a.time with None -> [] | Some tt -> Lterm.tvars tt

let apply s a =
  {
    a with
    args = List.map (Subst.apply s) a.args;
    time = Option.map (Subst.apply_time s) a.time;
  }

let equal a b =
  String.equal a.predicate b.predicate
  && List.length a.args = List.length b.args
  && List.for_all2 Lterm.equal a.args b.args
  && Option.equal
       (fun x y ->
         match (x, y) with
         | Lterm.Tvar v, Lterm.Tvar w -> String.equal v w
         | Lterm.Tconst i, Lterm.Tconst j -> Kg.Interval.equal i j
         | _ -> x = y)
       a.time b.time

let compare a b = Stdlib.compare a b

let pp_args pp_one ppf args =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_one)
    args

let pp ppf a =
  Format.fprintf ppf "%s%a" a.predicate (pp_args Lterm.pp) a.args;
  match a.time with
  | None -> ()
  | Some tt -> Format.fprintf ppf "@@%a" Lterm.pp_time tt

module Ground = struct
  type t = {
    predicate : string;
    args : Kg.Term.t list;
    time : Kg.Interval.t option;
  }

  let make ?time predicate args = { predicate; args; time }

  let of_quad q =
    {
      predicate = Kg.Term.to_string q.Kg.Quad.predicate;
      args = [ q.Kg.Quad.subject; q.Kg.Quad.object_ ];
      time = Some q.Kg.Quad.time;
    }

  let to_quad ?(confidence = 1.0) a =
    match (a.args, a.time) with
    | [ s; o ], Some i ->
        Some
          (Kg.Quad.make ~confidence ~subject:s
             ~predicate:(Kg.Term.iri a.predicate) ~object_:o i)
    | _ -> None

  let equal a b =
    String.equal a.predicate b.predicate
    && List.length a.args = List.length b.args
    && List.for_all2 Kg.Term.equal a.args b.args
    && Option.equal Kg.Interval.equal a.time b.time

  let compare a b =
    let c = String.compare a.predicate b.predicate in
    if c <> 0 then c
    else
      let c = List.compare Kg.Term.compare a.args b.args in
      if c <> 0 then c else Option.compare Kg.Interval.compare a.time b.time

  let hash a =
    Hashtbl.hash
      ( a.predicate,
        List.map Kg.Term.hash a.args,
        Option.map (fun i -> (Kg.Interval.lo i, Kg.Interval.hi i)) a.time )

  let pp ppf a =
    Format.fprintf ppf "%s%a" a.predicate (pp_args Kg.Term.pp) a.args;
    match a.time with
    | None -> ()
    | Some i -> Format.fprintf ppf "@@%a" Kg.Interval.pp i

  let to_string a = Format.asprintf "%a" pp a
end

let instantiate s a =
  let rec eval_args acc = function
    | [] -> Some (List.rev acc)
    | term :: rest -> (
        match Subst.eval_term s term with
        | Some c -> eval_args (c :: acc) rest
        | None -> None)
  in
  match eval_args [] a.args with
  | None -> None
  | Some args -> (
      match a.time with
      | None -> Some { Ground.predicate = a.predicate; args; time = None }
      | Some tt -> (
          match Subst.eval_time s tt with
          | Some i ->
              Some { Ground.predicate = a.predicate; args; time = Some i }
          | None -> None))

let match_ground pattern ground subst =
  if
    (not (String.equal pattern.predicate ground.Ground.predicate))
    || List.length pattern.args <> List.length ground.Ground.args
  then None
  else
    let step subst (pterm, gconst) =
      match subst with
      | None -> None
      | Some s -> (
          match pterm with
          | Lterm.Const c ->
              if Kg.Term.equal c gconst then Some s else None
          | Lterm.Var v -> Subst.bind s v gconst)
    in
    let subst =
      List.fold_left step (Some subst)
        (List.combine pattern.args ground.Ground.args)
    in
    match (subst, pattern.time, ground.Ground.time) with
    | None, _, _ -> None
    | Some s, None, None -> Some s
    | Some s, Some (Lterm.Tvar v), Some i -> Subst.bind_time s v i
    | Some s, Some tt, Some i -> (
        (* Computed or constant temporal term: must already evaluate. *)
        match Subst.eval_time s tt with
        | Some j when Kg.Interval.equal i j -> Some s
        | _ -> None)
    | Some _, None, Some _ | Some _, Some _, None -> None
