type arith =
  | Num of int
  | Start_of of Lterm.ttime
  | End_of of Lterm.ttime
  | Length_of of Lterm.ttime
  | Value_of of Lterm.t
  | Add of arith * arith
  | Sub of arith * arith

type cmp = Lt | Le | Gt | Ge | Eq_cmp | Ne_cmp

type t =
  | Allen of Kg.Allen.Set.t * Lterm.ttime * Lterm.ttime
  | Cmp of cmp * arith * arith
  | Eq of Lterm.t * Lterm.t
  | Neq of Lterm.t * Lterm.t

let allen r a b = Allen (Kg.Allen.Set.singleton r, a, b)
let allen_set s a b = Allen (s, a, b)

let rec arith_vars = function
  | Num _ | Start_of _ | End_of _ | Length_of _ -> []
  | Value_of t -> Lterm.vars t
  | Add (a, b) | Sub (a, b) -> arith_vars a @ arith_vars b

let rec arith_tvars = function
  | Num _ | Value_of _ -> []
  | Start_of tt | End_of tt | Length_of tt -> Lterm.tvars tt
  | Add (a, b) | Sub (a, b) -> arith_tvars a @ arith_tvars b

let dedup l =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.replace seen v ();
        true
      end)
    l

let vars = function
  | Allen _ -> []
  | Cmp (_, a, b) -> dedup (arith_vars a @ arith_vars b)
  | Eq (a, b) | Neq (a, b) -> dedup (Lterm.vars a @ Lterm.vars b)

let tvars = function
  | Allen (_, a, b) -> dedup (Lterm.tvars a @ Lterm.tvars b)
  | Cmp (_, a, b) -> dedup (arith_tvars a @ arith_tvars b)
  | Eq _ | Neq _ -> []

let rec eval_arith s = function
  | Num n -> Some n
  | Start_of tt -> Option.map Kg.Interval.lo (Subst.eval_time s tt)
  | End_of tt -> Option.map Kg.Interval.hi (Subst.eval_time s tt)
  | Length_of tt -> Option.map Kg.Interval.length (Subst.eval_time s tt)
  | Value_of term ->
      Option.bind (Subst.eval_term s term) Kg.Term.as_int
  | Add (a, b) -> (
      match (eval_arith s a, eval_arith s b) with
      | Some x, Some y -> Some (x + y)
      | _ -> None)
  | Sub (a, b) -> (
      match (eval_arith s a, eval_arith s b) with
      | Some x, Some y -> Some (x - y)
      | _ -> None)

let eval_cmp op x y =
  match op with
  | Lt -> x < y
  | Le -> x <= y
  | Gt -> x > y
  | Ge -> x >= y
  | Eq_cmp -> x = y
  | Ne_cmp -> x <> y

let eval s = function
  | Allen (set, a, b) -> (
      match (Subst.eval_time s a, Subst.eval_time s b) with
      | Some ia, Some ib -> Some (Kg.Allen.Set.holds set ia ib)
      | _ -> None)
  | Cmp (op, a, b) -> (
      match (eval_arith s a, eval_arith s b) with
      | Some x, Some y -> Some (eval_cmp op x y)
      | _ -> None)
  | Eq (a, b) -> (
      match (Subst.eval_term s a, Subst.eval_term s b) with
      | Some x, Some y -> Some (Kg.Term.equal x y)
      | _ -> None)
  | Neq (a, b) -> (
      match (Subst.eval_term s a, Subst.eval_term s b) with
      | Some x, Some y -> Some (not (Kg.Term.equal x y))
      | _ -> None)

let negate_cmp = function
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt
  | Eq_cmp -> Ne_cmp
  | Ne_cmp -> Eq_cmp

let negate = function
  | Allen (set, a, b) ->
      let complement =
        List.fold_left
          (fun acc r ->
            if Kg.Allen.Set.mem r set then acc else Kg.Allen.Set.add r acc)
          Kg.Allen.Set.empty Kg.Allen.all
      in
      Allen (complement, a, b)
  | Cmp (op, a, b) -> Cmp (negate_cmp op, a, b)
  | Eq (a, b) -> Neq (a, b)
  | Neq (a, b) -> Eq (a, b)

let cmp_name = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq_cmp -> "=="
  | Ne_cmp -> "!="

let rec pp_arith ppf = function
  | Num n -> Format.pp_print_int ppf n
  | Start_of tt -> Format.fprintf ppf "start(%a)" Lterm.pp_time tt
  | End_of tt -> Format.fprintf ppf "end(%a)" Lterm.pp_time tt
  | Length_of tt -> Format.fprintf ppf "length(%a)" Lterm.pp_time tt
  | Value_of t -> Format.fprintf ppf "value(%a)" Lterm.pp t
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp_arith a pp_arith b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_arith a pp_arith b

let pp ppf = function
  | Allen (set, a, b) ->
      if Kg.Allen.Set.cardinal set = 1 then
        Format.fprintf ppf "%a(%a, %a)" Kg.Allen.pp
          (List.hd (Kg.Allen.Set.to_list set))
          Lterm.pp_time a Lterm.pp_time b
      else if Kg.Allen.Set.equal set Kg.Allen.Set.disjoint then
        Format.fprintf ppf "disjoint(%a, %a)" Lterm.pp_time a Lterm.pp_time b
      else if Kg.Allen.Set.equal set Kg.Allen.Set.intersects then
        Format.fprintf ppf "intersects(%a, %a)" Lterm.pp_time a Lterm.pp_time
          b
      else
        Format.fprintf ppf "%a(%a, %a)" Kg.Allen.Set.pp set Lterm.pp_time a
          Lterm.pp_time b
  | Cmp (op, a, b) ->
      Format.fprintf ppf "%a %s %a" pp_arith a (cmp_name op) pp_arith b
  | Eq (a, b) -> Format.fprintf ppf "%a == %a" Lterm.pp a Lterm.pp b
  | Neq (a, b) -> Format.fprintf ppf "%a != %a" Lterm.pp a Lterm.pp b
