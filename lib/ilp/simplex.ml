(* Dense two-phase primal simplex with Bland's rule.

   Canonical layout: [m] tableau rows over columns
   [0 .. n-1]           structural variables
   [n .. n+s-1]         slack/surplus variables
   [n+s .. n+s+a-1]     artificial variables
   plus a right-hand-side entry per row. [basis.(i)] is the basic column
   of row [i]. The objective row holds reduced costs; a pivot keeps the
   whole system in canonical form. *)

type tableau = {
  rows : float array array; (* m x (total + 1); last entry is rhs *)
  obj : float array;        (* total + 1; last entry is -objective value *)
  basis : int array;
  total : int;
}

let pivot t ~row ~col =
  let width = t.total + 1 in
  let prow = t.rows.(row) in
  let scale = prow.(col) in
  for j = 0 to width - 1 do
    prow.(j) <- prow.(j) /. scale
  done;
  let eliminate target =
    let factor = target.(col) in
    if factor <> 0.0 then
      for j = 0 to width - 1 do
        target.(j) <- target.(j) -. (factor *. prow.(j))
      done
  in
  Array.iteri (fun i r -> if i <> row then eliminate r) t.rows;
  eliminate t.obj;
  t.basis.(row) <- col

(* Bland: entering = smallest eligible column; leaving = smallest ratio,
   ties broken by smallest basic column. *)
let iterate ?(eps = 1e-9) ?(max_iters = 200_000) t ~allowed =
  let m = Array.length t.rows in
  let finish iters outcome =
    Obs.count ~n:iters "simplex.pivots";
    outcome
  in
  let rec step iters =
    if iters > max_iters then failwith "Simplex: iteration limit";
    let entering =
      let rec find j =
        if j >= t.total then None
        else if allowed j && t.obj.(j) > eps then Some j
        else find (j + 1)
      in
      find 0
    in
    match entering with
    | None -> finish iters `Optimal
    | Some col ->
        let leaving = ref (-1) in
        let best_ratio = ref infinity in
        for i = 0 to m - 1 do
          let a = t.rows.(i).(col) in
          if a > eps then begin
            let ratio = t.rows.(i).(t.total) /. a in
            if
              ratio < !best_ratio -. eps
              || (Float.abs (ratio -. !best_ratio) <= eps
                 && (!leaving = -1 || t.basis.(i) < t.basis.(!leaving)))
            then begin
              best_ratio := ratio;
              leaving := i
            end
          end
        done;
        if !leaving = -1 then finish iters `Unbounded
        else begin
          pivot t ~row:!leaving ~col;
          step (iters + 1)
        end
  in
  step 0

(* Install costs [c] (length total) for the current basis: the objective
   row becomes the reduced costs and the negated objective value. *)
let price_out t c =
  let width = t.total + 1 in
  Array.blit c 0 t.obj 0 t.total;
  t.obj.(t.total) <- 0.0;
  Array.iteri
    (fun i row ->
      let cb = c.(t.basis.(i)) in
      if cb <> 0.0 then
        for j = 0 to width - 1 do
          t.obj.(j) <- t.obj.(j) -. (cb *. row.(j))
        done)
    t.rows

let solve ?(eps = 1e-7) (lp : Lp.t) =
  Obs.count "simplex.solves";
  let n = lp.num_vars in
  let constraints = Array.of_list lp.constraints in
  let m = Array.length constraints in
  (* Normalise every row to a non-negative right-hand side. *)
  let rows =
    Array.map
      (fun (c : Lp.constr) ->
        if c.rhs < 0.0 then
          ( List.map (fun (v, a) -> (v, -.a)) c.coeffs,
            (match c.op with Lp.Le -> Lp.Ge | Lp.Ge -> Lp.Le | Lp.Eq -> Lp.Eq),
            -.c.rhs )
        else (c.coeffs, c.op, c.rhs))
      constraints
  in
  let num_slack =
    Array.fold_left
      (fun acc (_, op, _) -> match op with Lp.Eq -> acc | _ -> acc + 1)
      0 rows
  in
  let num_art =
    Array.fold_left
      (fun acc (_, op, _) -> match op with Lp.Le -> acc | _ -> acc + 1)
      0 rows
  in
  let total = n + num_slack + num_art in
  let t =
    {
      rows = Array.make_matrix m (total + 1) 0.0;
      obj = Array.make (total + 1) 0.0;
      basis = Array.make m (-1);
      total;
    }
  in
  let first_art = n + num_slack in
  let next_slack = ref n in
  let next_art = ref first_art in
  Array.iteri
    (fun i (coeffs, op, rhs) ->
      let row = t.rows.(i) in
      List.iter (fun (v, a) -> row.(v) <- row.(v) +. a) coeffs;
      row.(total) <- rhs;
      (match op with
      | Lp.Le ->
          row.(!next_slack) <- 1.0;
          t.basis.(i) <- !next_slack;
          incr next_slack
      | Lp.Ge ->
          row.(!next_slack) <- -1.0;
          incr next_slack;
          row.(!next_art) <- 1.0;
          t.basis.(i) <- !next_art;
          incr next_art
      | Lp.Eq ->
          row.(!next_art) <- 1.0;
          t.basis.(i) <- !next_art;
          incr next_art))
    rows;
  let is_artificial j = j >= first_art in
  (* Phase 1: maximise minus the sum of artificials. *)
  if num_art > 0 then begin
    let phase1_cost = Array.make total 0.0 in
    for j = first_art to total - 1 do
      phase1_cost.(j) <- -1.0
    done;
    price_out t phase1_cost;
    (match iterate ~eps t ~allowed:(fun _ -> true) with
    | `Optimal -> ()
    | `Unbounded -> assert false (* phase-1 objective is bounded by 0 *));
    (* The objective row's rhs holds the negated objective value; the
       phase-1 value is -(sum of artificials), so the rhs is the sum. *)
    let infeasibility = t.obj.(total) in
    if infeasibility < -.eps then failwith "Simplex: negative phase-1 value";
    if Float.abs infeasibility > eps then raise Exit
  end;
  (* Drive remaining artificials out of the basis (they sit at zero). *)
  Array.iteri
    (fun i b ->
      if is_artificial b then begin
        let col = ref (-1) in
        for j = 0 to first_art - 1 do
          if !col = -1 && Float.abs t.rows.(i).(j) > eps then col := j
        done;
        if !col >= 0 then pivot t ~row:i ~col:!col
        (* else: the row is redundant; the artificial stays basic at 0 and
           is never allowed to re-enter, so it is harmless. *)
      end)
    t.basis;
  (* Phase 2: original objective over structural variables. *)
  let cost = Array.make total 0.0 in
  Array.blit lp.objective 0 cost 0 n;
  price_out t cost;
  match iterate ~eps t ~allowed:(fun j -> not (is_artificial j)) with
  | `Unbounded -> Lp.Unbounded
  | `Optimal ->
      let x = Array.make n 0.0 in
      Array.iteri
        (fun i b -> if b < n then x.(b) <- t.rows.(i).(total))
        t.basis;
      Lp.Optimal { x; value = Lp.eval_objective lp x }

let solve ?eps lp =
  try solve ?eps lp with
  | Exit -> Lp.Infeasible
