type relop = Le | Ge | Eq

type constr = {
  coeffs : (int * float) list;
  op : relop;
  rhs : float;
}

type t = {
  num_vars : int;
  objective : float array;
  constraints : constr list;
}

type outcome =
  | Optimal of { x : float array; value : float }
  | Infeasible
  | Unbounded

let constr coeffs op rhs = { coeffs; op; rhs }

let make ~num_vars ~objective constraints =
  if Array.length objective <> num_vars then
    invalid_arg "Lp.make: objective length mismatch";
  List.iter
    (fun c ->
      List.iter
        (fun (v, _) ->
          if v < 0 || v >= num_vars then
            invalid_arg (Printf.sprintf "Lp.make: variable %d out of range" v))
        c.coeffs)
    constraints;
  { num_vars; objective; constraints }

let eval_objective t x =
  let acc = ref 0.0 in
  for i = 0 to t.num_vars - 1 do
    acc := !acc +. (t.objective.(i) *. x.(i))
  done;
  !acc

let row_value c x =
  List.fold_left (fun acc (v, a) -> acc +. (a *. x.(v))) 0.0 c.coeffs

let feasible ?(eps = 1e-6) t x =
  Array.for_all (fun v -> v >= -.eps) x
  && List.for_all
       (fun c ->
         let lhs = row_value c x in
         match c.op with
         | Le -> lhs <= c.rhs +. eps
         | Ge -> lhs >= c.rhs -. eps
         | Eq -> Float.abs (lhs -. c.rhs) <= eps)
       t.constraints

let pp_relop ppf = function
  | Le -> Format.pp_print_string ppf "<="
  | Ge -> Format.pp_print_string ppf ">="
  | Eq -> Format.pp_print_string ppf "="

let pp ppf t =
  Format.fprintf ppf "@[<v>maximize";
  Array.iteri
    (fun i c ->
      if c <> 0.0 then Format.fprintf ppf " %+gx%d" c i)
    t.objective;
  List.iter
    (fun c ->
      Format.fprintf ppf "@ s.t.";
      List.iter (fun (v, a) -> Format.fprintf ppf " %+gx%d" a v) c.coeffs;
      Format.fprintf ppf " %a %g" pp_relop c.op c.rhs)
    t.constraints;
  Format.fprintf ppf "@]"
