(** Linear programming problems (maximisation form).

    nRockIt reduces MLN MAP inference to integer linear programming and
    ships it to Gurobi; {!Ilp} is our replacement. A problem has [n]
    non-negative variables, a linear objective to maximise and a list of
    linear constraints. Upper bounds are expressed as constraints by the
    callers that need them (MaxSAT encodings bound every variable by 1). *)

type relop = Le | Ge | Eq

type constr = {
  coeffs : (int * float) list;  (** sparse row: (variable, coefficient) *)
  op : relop;
  rhs : float;
}

type t = {
  num_vars : int;
  objective : float array;      (** length [num_vars] *)
  constraints : constr list;
}

type outcome =
  | Optimal of { x : float array; value : float }
  | Infeasible
  | Unbounded

val make : num_vars:int -> objective:float array -> constr list -> t
(** @raise Invalid_argument on length mismatch or out-of-range variable
    indices. *)

val constr : (int * float) list -> relop -> float -> constr

val eval_objective : t -> float array -> float

val feasible : ?eps:float -> t -> float array -> bool
(** Check a point against all constraints and non-negativity. *)

val pp : Format.formatter -> t -> unit
