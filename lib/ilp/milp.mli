(** Mixed 0/1 integer programming by branch & bound over LP relaxations.

    This is the exact solving backend of the MLN path: the MaxSAT
    encoding of a ground Markov network is a 0/1 ILP (nRockIt's Gurobi
    reduction). Branching fixes a fractional binary variable to 0 or 1 by
    adding an equality row; subtrees whose relaxation bound cannot beat
    the incumbent are pruned. *)

type result = {
  x : float array;          (** integral on the binary variables *)
  value : float;
  nodes : int;              (** branch & bound nodes explored *)
  optimal : bool;           (** false when the node budget was exhausted *)
}

val solve :
  ?eps:float ->
  ?max_nodes:int ->
  ?deadline:Prelude.Deadline.t ->
  binary:int list ->
  Lp.t ->
  result option
(** [solve ~binary lp] maximises [lp] with the listed variables restricted
    to {0, 1} (their [x <= 1] rows must already be part of [lp] or are
    added here). Returns [None] when infeasible — or, under a finite
    [deadline], when the budget expired before any integral incumbent
    was found. Default node budget is 100_000.

    [deadline] (default {!Prelude.Deadline.none}) is polled at every
    branch & bound node; on expiry the search stops and the best
    integral incumbent so far is returned with [optimal = false]
    (exactly like an exhausted node budget). *)
