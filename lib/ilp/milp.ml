type result = {
  x : float array;
  value : float;
  nodes : int;
  optimal : bool;
}

let is_integral ?(eps = 1e-6) v = Float.abs (v -. Float.round v) <= eps

let solve ?(eps = 1e-6) ?(max_nodes = 100_000)
    ?(deadline = Prelude.Deadline.none) ~binary (lp : Lp.t) =
  (* Ensure x <= 1 for every binary variable. *)
  let bound_rows =
    List.map (fun v -> Lp.constr [ (v, 1.0) ] Lp.Le 1.0) binary
  in
  let base = { lp with Lp.constraints = bound_rows @ lp.constraints } in
  let incumbent = ref None in
  let nodes = ref 0 in
  let exhausted = ref false in
  let observing = Obs.enabled () in
  (* Incumbent trail: (absolute ms, negated objective) at every
     improvement — branch-and-bound maximises, so the negation is a
     cost that only decreases. *)
  let trail = ref [] in
  let note value =
    if observing then begin
      trail := (Prelude.Timing.now_ms (), -.value) :: !trail;
      Obs.event ~level:Obs.Events.Debug "milp.incumbent"
        [
          ("value", Obs.Events.Float value); ("node", Obs.Events.Int !nodes);
        ]
    end
  in
  let better value =
    match !incumbent with None -> true | Some (_, v) -> value > v +. eps
  in
  (* [fixed] is a list of (variable, 0/1) decisions on the path. *)
  (* Polled at every node: a node runs a full simplex solve, so the
     clock read is negligible and expiry is noticed within one solve. *)
  let rec explore fixed =
    if !nodes >= max_nodes || Prelude.Deadline.expired deadline then
      exhausted := true
    else begin
      incr nodes;
      let extra =
        List.map (fun (v, b) -> Lp.constr [ (v, 1.0) ] Lp.Eq (float_of_int b)) fixed
      in
      let node_lp = { base with Lp.constraints = extra @ base.Lp.constraints } in
      match Simplex.solve node_lp with
      | Lp.Infeasible -> ()
      | Lp.Unbounded ->
          (* A bounded 0/1 encoding can only be unbounded through a
             modelling error in the continuous part. *)
          failwith "Milp: unbounded relaxation"
      | Lp.Optimal { x; value } ->
          if better value then begin
            let fractional =
              List.filter (fun v -> not (is_integral ~eps x.(v))) binary
            in
            match fractional with
            | [] ->
                incumbent := Some (Array.copy x, value);
                note value
            | _ ->
                (* Branch on the most fractional binary variable. *)
                let v =
                  List.fold_left
                    (fun best v ->
                      let frac u = Float.abs (x.(u) -. 0.5) in
                      if frac v < frac best then v else best)
                    (List.hd fractional) fractional
                in
                (* Explore the rounding-preferred branch first. *)
                let first = if x.(v) >= 0.5 then 1 else 0 in
                explore ((v, first) :: fixed);
                explore ((v, 1 - first) :: fixed)
          end
    end
  in
  explore [];
  Obs.count ~n:!nodes "milp.nodes";
  Obs.record "milp.nodes_per_solve" (float_of_int !nodes);
  if observing then begin
    let samples =
      match List.rev !trail with
      | [] ->
          (* No incumbent found (infeasible, or the budget expired
             before the first integral solution). *)
          [ (Prelude.Timing.now_ms (), 0.0) ]
      | samples -> samples
    in
    ignore
      (List.fold_left
         (fun running (t, v) ->
           let running = Float.min running v in
           Obs.sample "milp.convergence" ~t_ms:t ~v:running;
           running)
         infinity samples);
    Obs.event ~level:Obs.Events.Debug "milp.search"
      [
        ("nodes", Obs.Events.Int !nodes);
        ("optimal", Obs.Events.Bool (not !exhausted));
        ("incumbent", Obs.Events.Bool (!incumbent <> None));
      ]
  end;
  match !incumbent with
  | None -> None
  | Some (x, value) ->
      (* Snap binaries exactly. *)
      List.iter (fun v -> x.(v) <- Float.round x.(v)) binary;
      Some { x; value; nodes = !nodes; optimal = not !exhausted }
