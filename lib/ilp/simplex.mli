(** Two-phase primal simplex over a dense tableau.

    Solves {!Lp.t} problems (maximise, non-negative variables). Bland's
    anti-cycling rule guarantees termination. Intended for the moderate
    instances the exact MLN path handles — the scalable path in TeCoRe is
    PSL, mirroring the paper's observation that "MLN solvers do not scale
    well". *)

val solve : ?eps:float -> Lp.t -> Lp.outcome
