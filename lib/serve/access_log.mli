(** Structured JSON-lines access log for [tecore serve].

    One record per traced request. The writer is shared by all
    connection threads (each line is written atomically under a lock)
    and rotates by size: when appending a record would push the live
    file past [max_bytes] it is renamed to [FILE.1] (existing rotations
    shifting to [FILE.2] ... [FILE.keep], the oldest discarded) and a
    fresh file is started. Like the session journal, the log is
    append-only, so a crash mid-write can only damage the final line;
    the reader skips such a torn tail with a typed warning instead of
    failing. *)

type record = {
  req : int;  (** server-assigned request id: unique, monotone *)
  ts : float;  (** Unix epoch seconds at request completion *)
  session : string option;
      (** session bound to the connection, once [hello] succeeded *)
  lane : int option;
      (** resolver lane the session is pinned to; only emitted by
          servers running with more than one lane ([--lanes]) *)
  verb : string;  (** first keyword of the request, or ["invalid"] *)
  outcome : string;  (** ["ok"] or the typed error kind *)
  wall_ms : float;
  phases : (string * float) list;
      (** elapsed ms per phase, in {!phase_names} order; phases that did
          not occur are absent (treat as zero) *)
}

val phase_names : string list
(** The phase taxonomy in canonical reporting order:
    parse, queue, lock, ground, solve, journal, fsync, reply. *)

val record_to_json : record -> Obs.Json.t
val record_to_line : record -> string

val record_of_line : string -> (record, string) result
(** Parse one log line, validating the schema (positive integer [req],
    non-negative durations, phase object). *)

(** {1 Writer} *)

type writer

val open_writer : path:string -> max_bytes:int -> keep:int -> writer
(** Open (creating or appending to) the log at [path]. [max_bytes] is
    clamped to >= 1024, [keep] (rotated files retained) to >= 1. Raises
    [Unix.Unix_error] when the path cannot be opened. *)

val write : writer -> record -> unit
(** Append one record as a single line, rotating first if it would
    overflow the live file. Thread-safe. Raises [Unix.Unix_error] on
    I/O failure. *)

val close_writer : writer -> unit

(** {1 Reader / analyzer} *)

type warning =
  | Torn_tail of { line : int }
      (** the final line is incomplete or unparsable — the signature of
          a crash mid-append — and was skipped *)
  | Bad_record of { line : int; reason : string }
      (** a non-final line failed to parse or validate *)

val warning_to_string : warning -> string

val read_file : string -> record list * warning list
(** All parsable records of one log file in order, plus typed warnings
    for every skipped line. Raises [Sys_error] when the file cannot be
    read. *)

type stats = {
  total : int;
  wall : Obs.Histogram.t;
  phase_hists : (string * Obs.Histogram.t) list;
      (** per-phase latency histograms in {!phase_names} order, only
          for phases that occur; built with {!Obs.Histogram}, so
          quantiles match the server's live [serve_request_phase_ms]
          summaries exactly when computed over the same records *)
  slowest : record list;  (** top-N by [wall_ms], slowest first *)
}

val stats : ?top:int -> record list -> stats
(** Aggregate records (default [top] = 10 slowest retained). *)
