(** [tecore serve] — a long-lived daemon multiplexing many incremental
    sessions over the line-oriented wire protocol of {!Protocol}.

    Architecture (see [docs/SERVER.md]):

    - a {e session registry} keyed by client id: each [hello CLIENT-ID]
      attaches the connection to a {!Tecore.Session.t} with its own
      incremental {!Tecore.Engine.state}, so a client's 1-fact edit
      always takes the warm replay path;
    - one {e connection thread} per accepted socket reads length-bounded
      lines, parses them totally, executes cheap edits inline (under the
      session's lock) and routes [resolve] through admission control;
    - {e resolver lanes}: [resolve] requests run on one of [lanes]
      resolver threads. Each session is affinity-pinned to a lane by a
      stable (FNV-1a) hash of its id, so a session's resolves execute
      in submission order by construction, while sessions on different
      lanes no longer head-of-line-block each other. The solve itself
      is serialised across lanes behind a single lock (the shared
      domain {!Prelude.Pool} stays single-tenant), so engine results —
      and response bytes — are independent of the lane count. The
      default of one lane preserves the previous single-resolver
      behaviour exactly;
    - {e admission control}: a bounded run queue (the lanes' sub-queues
      under one global budget) in front of the resolver lanes.
      When the pending count exceeds the bound the request is shed
      immediately with a typed [overloaded] response — the queue never
      grows without bound. A per-request budget (when configured) sheds
      requests whose budget expired while queued with a typed
      [timed_out] response and disciplines the solve itself through the
      existing {!Prelude.Deadline} machinery;
    - {e live metrics}: [serve_*] gauges and counters merged into the
      {!Obs} OpenMetrics exposition, served from the [metrics] verb
      while the server runs (not at exit).

    Nothing a client sends can kill the accept loop: unexpected
    exceptions inside a request are contained as typed [internal]
    errors and the connection stays usable. *)

module Journal = Journal
(** Re-export: the durability layer (see {!Journal}), so callers can
    name [Serve.Journal.fsync_policy] without linking the internal
    module path. *)

module Protocol = Protocol
(** Re-export: the wire protocol, for tests and embedding clients. *)

module Access_log = Access_log
(** Re-export: the structured access-log format, writer and offline
    analyzer (see {!Access_log}), shared by the server, the [tecore
    logstat] subcommand and the tests. *)

type config = {
  engine : Tecore.Engine.engine;  (** engine for every resolve *)
  jobs : int option;
      (** worker domains for the shared pool ([None]: [TECORE_JOBS],
          else 1 — the {!Tecore.Engine.resolve} default) *)
  queue_cap : int;
      (** admission bound: a resolve is shed when the number of pending
          resolves (queued + running) exceeds this. [0] means "shed
          whenever busy". *)
  request_timeout_ms : float option;
      (** per-request budget. It covers queue wait (expired-before-run
          requests are shed with a typed [timed_out] error) and, for
          the part that remains, the solve itself via
          {!Prelude.Deadline} — note a finite deadline bypasses the
          incremental caches, so warm-path service normally runs
          without one. [None] (default): no budget. *)
  max_line_bytes : int;
      (** requests longer than this are refused with a typed parse
          error (the rest of the oversized line is discarded; the
          connection stays usable) *)
  allow_shutdown : bool;
      (** whether the [shutdown] verb is honoured (the CLI enables it;
          library/test servers default to [false]) *)
  max_sessions : int option;
      (** session-registry bound: when a [hello] would create a session
          past this cap, the least-recently-used session is evicted
          (counted in [serve_sessions_evicted_total]). Connections still
          attached to an evicted session get a typed [evicted] error on
          their next use and must [hello] again. [None] (default): no
          bound. *)
  state_dir : string option;
      (** durability root. When set, every session keeps a write-ahead
          journal under [STATE_DIR/sessions/]: accepted edits are
          journaled before they are acked, [start] rebuilds the registry
          by replaying every session directory (tolerating torn tails —
          see {!Journal}), and [hello]/[stat] responses gain durability
          fields. [None] (default): in-memory only, byte-identical
          responses to previous releases. *)
  fsync : Journal.fsync_policy;
      (** journal fsync policy (default {!Journal.Always}: an acked edit
          survives SIGKILL). Snapshots and manifests are always
          fsynced. *)
  compact_every : int;
      (** compact a session's journal into a fresh snapshot once this
          many records accumulate since the last snapshot ([<= 0]
          disables size-triggered compaction; [load] still forces
          one). *)
  idle_ttl_s : float option;
      (** idle-session TTL in seconds. Sessions idle past it are expired
          by a janitor thread (counted in
          [serve_sessions_expired_total]): parked to disk when
          [state_dir] is set (a later [hello] recovers them
          transparently), discarded otherwise. Attached connections get
          a typed [expired] error on their next use. [None] (default):
          sessions never expire. *)
  access_log : string option;
      (** when set, every traced request appends one JSON-lines record
          to this file (see {!Access_log}): request id, session, verb,
          outcome, wall time and the per-phase breakdown. [None]
          (default): no log. *)
  access_log_max_bytes : int;
      (** access-log rotation threshold (default 4 MiB; clamped
          to >= 1024) — see {!Access_log.open_writer} *)
  access_log_keep : int;  (** rotated access-log files kept (default 3) *)
  trace_every : int;
      (** initial request-trace sampling period: [0] off, [1] every
          request, [N] every Nth (by request id). [0] with [access_log]
          set starts at [1] instead — an access log that logs nothing
          would be a trap. Adjustable at runtime with the [trace] verb.
          Traced requests carry their request id as a ["req"] field in
          the response; untraced requests keep their exact previous
          response bytes. *)
  lanes : int;
      (** resolver lanes (clamped to >= 1). Sessions are pinned to a
          lane by a stable hash of their id; more lanes let independent
          sessions overlap everything but the solve itself. With more
          than one lane, [stat] responses and traced access-log records
          gain a [lane] field and the exposition gains per-lane rows;
          at the default of [1] the server is byte-identical to the
          previous single-resolver release. *)
}

val default_config : config
(** [Auto] engine, env-default jobs, queue bound 64, no budget, 1 MiB
    line cap, shutdown disabled, unbounded sessions, no state dir
    (fsync [Always], compaction at 256 records when one is set), no
    idle TTL, no access log, tracing off, and [TECORE_LANES] resolver
    lanes (default 1) — the env override exists so the whole serve test
    matrix can re-run multi-lane, like [TECORE_JOBS] for the pool. *)

type listen = [ `Tcp of int | `Unix of string ]
(** [`Tcp port] binds 127.0.0.1:[port] ([0] picks a free port);
    [`Unix path] binds a Unix-domain socket at [path] (an existing
    socket file there is replaced). *)

type t

val start : ?config:config -> listen -> t
(** Bind, spawn the accept and resolver threads, and return. With
    [state_dir] set, first rebuilds the session registry by recovering
    every session directory (replaying snapshots and journals; torn or
    corrupt content degrades to a typed recovery status, never an
    exception). Raises [Unix.Unix_error] when the address cannot be
    bound. *)

val port : t -> int option
(** The actual TCP port ([None] for Unix-domain servers). *)

val address : t -> string
(** Human-readable bound address ("127.0.0.1:PORT" or the socket
    path). *)

val connect : t -> Unix.file_descr
(** A fresh loopback client socket connected to this server (used by
    the scripted driver, tests and benchmarks). *)

val sessions_open : t -> int

val lane_count : t -> int
(** Number of resolver lanes this server runs. *)

val lane_of_session : t -> string -> int
(** The lane a session id is pinned to: a stable 32-bit FNV-1a hash
    modulo {!lane_count}. Total for any string (empty, huge and
    non-ASCII ids included) and always in [[0, lane_count)]. The
    [lane_collide:L] fault point (TECORE_FAULTS) overrides it to
    [L mod lane_count] for every id — the test hook for forcing hash
    collisions. *)

val queue_depth : t -> int
(** Resolves currently queued across all lanes (not counting running
    ones). *)

val busy : t -> bool
(** Whether any resolver lane is executing a request right now. *)

val shed_count : t -> int
(** Requests shed by admission control since [start]. *)

val sessions_evicted : t -> int
(** Sessions LRU-evicted under [max_sessions] since [start]. *)

val sessions_expired : t -> int
(** Sessions expired by the idle TTL since [start]. *)

val sessions_recovered : t -> int
(** Sessions recovered from the state dir (at [start] or lazily on
    [hello]) since [start]. *)

val requests_total : t -> int
(** Requests parsed off all connections since [start]. *)

val start_time : t -> float
(** Unix epoch seconds at {!start} — the value echoed as [started] in
    traced [hello] responses and behind [serve_uptime_seconds]. *)

val trace_period : t -> int
(** Current request-trace sampling period (0 = off), as last set by the
    config or the [trace] verb. *)

val recent_records : t -> Access_log.record list
(** The traced requests still in the [tail] ring (up to 64), oldest
    first. *)

val metrics_text : t -> string
(** Live OpenMetrics exposition: the whole {!Obs} report (span times,
    counters, solver histograms) plus [serve_sessions_open],
    [serve_queue_depth], per-lane [serve_lane_depth{lane=...}] gauges
    (queued + running) and [serve_lane_requests_total{lane=...}]
    counters, [serve_requests_total{outcome=...}],
    [serve_shed_total], [serve_sessions_evicted_total],
    [serve_sessions_expired_total], [serve_sessions_recovered_total],
    [serve_uptime_seconds], per-phase [serve_request_phase_ms]
    summaries (p50/p95 + [_sum]/[_count], fed by traced requests;
    quantiles computed exactly like {!Access_log.stats}, so a complete
    access log reproduces them) and per-session
    [serve_session_requests_total{session=...}] counters, terminated by
    [# EOF]. Passes {!Obs.Export.validate_metrics}. *)

val request_stop : t -> unit
(** Ask the server to stop (signal-handler safe: only sets a flag; the
    accept loop notices within its poll interval). *)

val stop : t -> unit
(** Stop and reclaim: close the listener and every connection, drain
    the run queue (queued jobs are answered with a typed
    [shutting_down] error), join all threads. Idempotent. *)

val wait : t -> unit
(** Block until {!request_stop} (or an honoured [shutdown] verb) fires,
    then run {!stop}. The CLI's foreground mode. *)

(** Scripted loopback client — drives a live server over a real socket
    and prints a deterministic transcript, for the [data/serve_*.golden]
    tests. Commands, one per line ([#] comments):

    {v
    connect NAME            open a client connection called NAME
    send NAME REQUEST       send REQUEST, wait for and print the response
    post NAME REQUEST       send REQUEST without waiting
    recv NAME               read and print one pending response
    await-busy              block until the resolver is executing
    await-idle              block until the queue is empty and idle
    close NAME              close NAME's socket
    v} *)
module Driver : sig
  val run :
    server:t ->
    Format.formatter ->
    path:string ->
    string ->
    (unit, Tecore.Script.error) result
  (** Execute a driver script against [server], printing
      ["NAME> request"] / ["NAME< response"] transcript lines. Errors
      (unknown client names, malformed driver lines, await timeouts)
      halt with a located error in the [path:line:column] convention. *)
end
