type request =
  | Hello of string
  | Open_
  | Cmd of Tecore.Script.command
  | Stat
  | Result_
  | Metrics
  | Ping
  | Quit
  | Shutdown
  | Trace of int
  | Tail of int

type error_kind =
  | Parse
  | Exec
  | Rejected
  | Overloaded
  | Timed_out
  | Evicted
  | Expired
  | Storage
  | Shutting_down
  | Internal

type error = { kind : error_kind; line : int; column : int; message : string }

let kind_name = function
  | Parse -> "parse"
  | Exec -> "exec"
  | Rejected -> "rejected"
  | Overloaded -> "overloaded"
  | Timed_out -> "timed_out"
  | Evicted -> "evicted"
  | Expired -> "expired"
  | Storage -> "storage"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)
(* ------------------------------------------------------------------ *)

let is_space c = c = ' ' || c = '\t'

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let split_keyword s =
  let n = String.length s in
  let rec skip i = if i < n && is_space s.[i] then skip (i + 1) else i in
  let ks = skip 0 in
  let rec word i = if i < n && not (is_space s.[i]) then word (i + 1) else i in
  let ke = word ks in
  let ps = skip ke in
  (String.sub s ks (ke - ks), String.sub s ps (n - ps), ks + 1, ps + 1)

let rstrip s =
  let n = String.length s in
  let rec go n = if n > 0 && is_space s.[n - 1] then go (n - 1) else n in
  String.sub s 0 (go n)

let parse_request ~line raw =
  let raw = strip_cr raw in
  let keyword, payload, col_kw, col_arg = split_keyword raw in
  let payload = rstrip payload in
  let err kind column message = Error { kind; line; column; message } in
  let no_arg verb r =
    if payload = "" then Ok r
    else err Parse col_arg (verb ^ " takes no argument")
  in
  match keyword with
  | "hello" ->
      if payload = "" then err Parse col_arg "hello: missing client id"
      else Ok (Hello payload)
  | "open" -> no_arg "open" Open_
  | "stat" -> no_arg "stat" Stat
  | "result" -> no_arg "result" Result_
  | "metrics" -> no_arg "metrics" Metrics
  | "ping" -> no_arg "ping" Ping
  | "quit" -> no_arg "quit" Quit
  | "shutdown" -> no_arg "shutdown" Shutdown
  | "trace" -> (
      match payload with
      | "" -> err Parse col_arg "trace: expected on, off or a period N"
      | "on" -> Ok (Trace 1)
      | "off" -> Ok (Trace 0)
      | p -> (
          match int_of_string_opt p with
          | Some n when n >= 0 -> Ok (Trace n)
          | _ -> err Parse col_arg "trace: expected on, off or a period N"))
  | "tail" -> (
      if payload = "" then Ok (Tail 10)
      else
        match int_of_string_opt payload with
        | Some n when n > 0 -> Ok (Tail n)
        | _ -> err Parse col_arg "tail: expected a positive count")
  | "" -> err Parse col_kw "empty request"
  | _ -> (
      (* Everything else is the session edit-script language, with its
         eager payload validation and column-accurate errors. *)
      match Tecore.Script.parse_command ~path:"wire" ~line raw with
      | Ok (Some c) -> Ok (Cmd c.Tecore.Script.cmd)
      | Ok None -> err Parse col_kw "empty request"
      | Error e ->
          err Parse e.Tecore.Script.column e.Tecore.Script.message)

let request_verb = function
  | Hello _ -> "hello"
  | Open_ -> "open"
  | Stat -> "stat"
  | Result_ -> "result"
  | Metrics -> "metrics"
  | Ping -> "ping"
  | Quit -> "quit"
  | Shutdown -> "shutdown"
  | Trace _ -> "trace"
  | Tail _ -> "tail"
  | Cmd c -> (
      match c with
      | Tecore.Script.Load _ -> "load"
      | Tecore.Script.Assert_ _ -> "assert"
      | Tecore.Script.Retract _ -> "retract"
      | Tecore.Script.Rule _ -> "rule"
      | Tecore.Script.Unrule _ -> "unrule"
      | Tecore.Script.Resolve _ -> "resolve"
      | Tecore.Script.Diff -> "diff")

(* ------------------------------------------------------------------ *)
(* Response rendering                                                  *)
(* ------------------------------------------------------------------ *)

let ok_line fields = "ok " ^ Obs.Json.to_string (Obs.Json.Obj fields)

let with_request_id ~req line =
  (* Splice ["req":N] in as the first field of the response object, so
     a traced request's id rides every ok/err line without re-rendering
     the payload. Lines without an object (never produced by this
     module) pass through unchanged. *)
  match String.index_opt line '{' with
  | None -> line
  | Some i ->
      let head = String.sub line 0 (i + 1) in
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      let sep = if rest = "}" then "" else "," in
      Printf.sprintf "%s\"req\":%d%s%s" head req sep rest

let err_line e =
  "err "
  ^ Obs.Json.to_string
      (Obs.Json.Obj
         [
           ("kind", Obs.Json.Str (kind_name e.kind));
           ("line", Obs.Json.Num (float_of_int e.line));
           ("column", Obs.Json.Num (float_of_int e.column));
           ("message", Obs.Json.Str e.message);
         ])
