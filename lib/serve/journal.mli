(** Per-session write-ahead journal with snapshot compaction and
    kill-resilient recovery — the durability layer behind
    [tecore serve --state-dir] (see [docs/SERVER.md]).

    {2 On-disk layout}

    Each session owns one directory under [STATE_DIR/sessions/], named
    by a percent-encoding of its client id:

    {v
    MANIFEST          current generation (written atomically: tmp +
                      rename + directory fsync)
    snapshot.<gen>    coalesced state dump at the start of generation
                      <gen> (absent for generation 0: the empty session)
    journal.<gen>     accepted edits since that snapshot, append-only
    v}

    {2 Record format}

    Snapshot and journal files share one total frame format:

    {v
    frame := length(4B BE) crc32(4B BE) payload '\n'
    v}

    where [payload] is a line of the {!Tecore.Script} command syntax
    (plus the [open] verb and [@prefix] directives for state dumps) and
    [crc32] is IEEE CRC-32 of the payload. The trailing newline keeps
    journals greppable; it is part of the frame but not of the payload.

    {2 Crash model}

    A write-ahead record is appended (and fsynced, per policy) {e
    before} the server acknowledges the edit, so under {!Always} an
    acked edit survives SIGKILL. A crash mid-append leaves a torn final
    frame; {!recover} truncates the journal at the first bad frame and
    reports {!Partial}. Deeper damage — a corrupt snapshot or manifest —
    degrades to {!Unrecoverable}: recovery still returns a usable
    (empty) session, re-initialises the directory at a fresh generation
    and leaves the damaged files in place for inspection. Recovery never
    raises on corrupt {e content}; it is a total function of the bytes
    on disk. *)

type fsync_policy =
  | Always  (** fsync after every appended record (the default) *)
  | Every of int  (** fsync once per [n] appended records *)
  | Never  (** leave flushing to the OS page cache *)

val fsync_policy_of_string : string -> (fsync_policy, string) result
(** ["always"], ["never"], or a positive integer [N] for [Every N]. *)

val fsync_policy_name : fsync_policy -> string

type t
(** An open journal handle. Not thread-safe on its own: the server
    serialises all access through the owning session's lock. (The
    cross-session {!group} state is the one exception — it carries its
    own lock, so appends on different sessions may pool their fsync
    budget concurrently.) *)

type group
(** A cross-session commit group. Handles {!attach}ed to one pool
    their [Every n] fsync budget: the threshold counts pending
    (acked-but-unsynced) appends across the {e whole group}, and
    crossing it fsyncs every dirty member behind one flush pass — a
    group commit. This turns the per-session durability bound of
    [Every n] (up to [n - 1] unsynced edits {e per session}) into a
    server-wide bound ([n - 1] unsynced edits in total), and lets
    resolver lanes batch their fsyncs instead of each session paying
    its own. [Always] and [Never] policies ignore the group. *)

val create_group : unit -> group

val attach : t -> group -> unit
(** Join a commit group. Thread-safe; a handle belongs to at most one
    group ({!close} detaches it). *)

val group_commits : group -> int
(** Completed group-commit flush passes since {!create_group}. *)

type status =
  | Full  (** every record replayed; the journal tail was clean *)
  | Partial of { dropped_bytes : int; replayed : int }
      (** a torn or corrupt frame was found; the journal was truncated
          at the first bad frame ([dropped_bytes] discarded) and the
          session holds the [replayed]-record prefix *)
  | Unrecoverable of string
      (** the manifest or snapshot itself is corrupt; the session is
          empty and the directory was re-initialised at a fresh
          generation (damaged files are left in place) *)

val status_name : status -> string
(** ["full"], ["partial"], ["unrecoverable"]. *)

type recovery = {
  session : Tecore.Session.t;
  journal : t;
  status : status;
}

val session_dir : state_dir:string -> string -> string
(** The directory that holds (or would hold) a client id's state. *)

val list_sessions : state_dir:string -> string list
(** Decoded client ids of every session directory under [state_dir],
    sorted. Missing [state_dir] is an empty listing. *)

val create :
  state_dir:string ->
  fsync:fsync_policy ->
  compact_every:int ->
  string ->
  t
(** Initialise a fresh session directory (generation 0, empty journal)
    for the given client id and return its open handle. Raises
    [Sys_error]/[Unix.Unix_error] when the directory cannot be
    created — environmental failures are the caller's problem, unlike
    corrupt content. *)

val recover :
  state_dir:string ->
  fsync:fsync_policy ->
  compact_every:int ->
  string ->
  recovery
(** Rebuild a session from its directory: replay [snapshot.<gen>] then
    [journal.<gen>], tolerating a torn tail (see {!status}). Total on
    corrupt content; environmental IO failures while re-opening for
    append leave the handle in a failed state whose {!append} raises. *)

val append : t -> string -> unit
(** Frame and append one accepted edit, fsyncing per policy. Raises
    [Sys_error] on IO failure (the server surfaces this as a typed
    [storage] error and stops journaling the session). The
    [journal_torn:K] fault point (TECORE_FAULTS) makes the K-th append
    of this handle write only a prefix of its frame and then stall, so
    crash tests can SIGKILL the process mid-write, deterministically. *)

val records_since_snapshot : t -> int
(** Appended (or replayed-from-tail) records since the last snapshot —
    the compaction trigger counter. *)

val appends : t -> int
(** Records appended through this handle's lifetime (the fault-point
    index). *)

val compact : t -> string list -> unit
(** Write the given state-dump lines as [snapshot.<gen+1>], switch to a
    fresh empty [journal.<gen+1>], atomically advance the manifest and
    delete the previous generation's files. A crash at any point leaves
    either the old or the new generation fully intact. *)

val maybe_compact : t -> (unit -> string list) -> bool
(** Run {!compact} when the record counter has reached the handle's
    [compact_every] threshold; returns whether it did. *)

val sync : t -> unit
(** Force an fsync of the journal fd (used at clean shutdown). *)

val close : t -> unit
(** {!sync} (best-effort), leave any commit {!group} and release the
    fd. Idempotent. *)

(**/**)

val replay_line :
  Tecore.Session.t -> line:int -> string -> (unit, string) result
(** Apply one record payload to a session — exposed for tests. *)

val crc32 : string -> int
(** IEEE CRC-32 (the frame checksum) — exposed for tests. *)

val encode_id : string -> string

val decode_id : string -> string option
