(** The wire protocol of [tecore serve].

    Line-delimited framing: a request is one LF-terminated line of
    bytes, a response is exactly one LF-terminated line back (responses
    that are logically multi-line — a diff, a metrics exposition — are
    carried as JSON-escaped strings). The request language embeds the
    session edit-script language of {!Tecore.Script} — [load], [assert],
    [retract], [rule]/[constraint], [unrule], [resolve], [diff] — plus
    server verbs:

    {v
    hello CLIENT-ID        attach to (or create) the session CLIENT-ID
    open                   start from an empty in-memory graph
    stat                   session statistics (facts, rules, caches)
    result                 full JSON payload of the last resolution
    metrics                live OpenMetrics dump of the whole server
    ping                   liveness probe
    quit                   close this connection
    shutdown               stop the server (when enabled)
    trace on|off|N         set request-trace sampling (N = every Nth)
    tail [K]               the K most recent traced requests (default 10)
    v}

    Responses are ["ok <json-object>"] or ["err <json-object>"]; the
    error object always carries a [kind], the request's [line] (its
    1-based sequence number on the connection) and [column], and a
    [message]. Parsing is total: every byte sequence yields a typed
    response, never an escaping exception (fuzzed in
    [test/test_fuzz.ml]). *)

type request =
  | Hello of string
  | Open_
  | Cmd of Tecore.Script.command
  | Stat
  | Result_
  | Metrics
  | Ping
  | Quit
  | Shutdown
  | Trace of int
      (** request-trace sampling period: [0] off, [1] every request,
          [N] every Nth ([trace on] = 1, [trace off] = 0) *)
  | Tail of int  (** the K most recent traced requests *)

type error_kind =
  | Parse  (** the request line does not parse *)
  | Exec  (** the request parsed but failed to execute *)
  | Rejected  (** the translator rejected the program *)
  | Overloaded  (** admission control shed the request (bounded queue) *)
  | Timed_out  (** the request's budget expired before it ran *)
  | Evicted
      (** the connection's session was LRU-evicted under
          [--max-sessions]; re-attach with [hello] *)
  | Expired
      (** the connection's session sat idle past [--idle-ttl]; with a
          state dir it was parked to disk and [hello] recovers it,
          otherwise it was discarded *)
  | Storage
      (** the session's write-ahead journal hit an IO failure; the edit
          applied in memory but is no longer durable (see
          [docs/SERVER.md]) *)
  | Shutting_down  (** the server is stopping *)
  | Internal  (** contained unexpected failure; the connection survives *)

type error = { kind : error_kind; line : int; column : int; message : string }

val kind_name : error_kind -> string
(** Lowercase tag used in the wire error object and [serve.*] metrics:
    ["parse"], ["exec"], ["rejected"], ["overloaded"], ["timed_out"],
    ["evicted"], ["expired"], ["storage"], ["shutting_down"],
    ["internal"]. *)

val strip_cr : string -> string
(** Drop one trailing [\r], so LF and CRLF clients look the same. *)

val split_keyword : string -> string * string * int * int
(** [split_keyword s] is [(keyword, rest, keyword_column, rest_column)]
    with surrounding blanks skipped and 1-based columns — the shared
    first tokenisation step of the wire parser and the scripted
    driver. *)

val parse_request : line:int -> string -> (request, error) result
(** Total parser for one request line ([line] is the request's sequence
    number on its connection, echoed into error locations). A trailing
    [\r] is stripped, so both LF and CRLF clients work. Blank and
    comment lines are an error on the wire (there is no transcript to
    skip them in). *)

val request_verb : request -> string
(** The request's first keyword — the [verb] field of access-log
    records (script commands report their command word, e.g.
    ["assert"] or ["resolve"]). *)

val ok_line : (string * Obs.Json.t) list -> string
(** ["ok <compact-json-object>"] — the fields in the given order. *)

val err_line : error -> string
(** ["err {\"kind\":...,\"line\":...,\"column\":...,\"message\":...}"]. *)

val with_request_id : req:int -> string -> string
(** Splice [{"req":N}] in as the first field of a rendered response
    line's JSON object — how a traced request's id is echoed without
    re-rendering the payload. *)
