(* Per-session write-ahead journal: CRC-framed records of the wire edit
   language, generation-based snapshot compaction, and total recovery.
   See journal.mli for the crash model and on-disk layout. *)

type fsync_policy = Always | Every of int | Never

let fsync_policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> Ok (Every n)
      | _ ->
          Error
            (Printf.sprintf
               "invalid fsync policy %S (expected always, never or a \
                positive integer)"
               s))

let fsync_policy_name = function
  | Always -> "always"
  | Never -> "never"
  | Every n -> string_of_int n

type status =
  | Full
  | Partial of { dropped_bytes : int; replayed : int }
  | Unrecoverable of string

let status_name = function
  | Full -> "full"
  | Partial _ -> "partial"
  | Unrecoverable _ -> "unrecoverable"

type t = {
  id : string;
  dir : string;
  fsync : fsync_policy;
  compact_every : int;
  mutable gen : int;
  mutable fd : Unix.file_descr option;
  mutable failed : string option;
      (* first environmental IO failure; sticky — the handle refuses
         further writes so the caller degrades to a typed storage
         error instead of silently losing records *)
  mutable since_snapshot : int;
  mutable appends : int;
  mutable unsynced : int;
  mutable group : group option;
      (* cross-session commit group this handle pools its [Every n]
         fsync budget with, when the server runs one *)
}

and group = {
  glock : Mutex.t;
      (* guards [members] and every member's [unsynced] counter while
         the handle belongs to the group *)
  mutable members : t list;
  commits : int Atomic.t;
}

type recovery = { session : Tecore.Session.t; journal : t; status : status }

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3)                                                 *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

(* A single corrupt length byte must not send recovery chasing a
   gigabyte allocation; no accepted wire line comes anywhere near
   this. *)
let max_record_bytes = 1 lsl 24

let header_bytes = 8

let frame_bytes payload = header_bytes + String.length payload + 1

let be32 b ofs v =
  Bytes.set b ofs (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (ofs + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (ofs + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (ofs + 3) (Char.chr (v land 0xff))

let read_be32 s ofs =
  (Char.code s.[ofs] lsl 24)
  lor (Char.code s.[ofs + 1] lsl 16)
  lor (Char.code s.[ofs + 2] lsl 8)
  lor Char.code s.[ofs + 3]

let frame payload =
  let len = String.length payload in
  let b = Bytes.create (frame_bytes payload) in
  be32 b 0 len;
  be32 b 4 (crc32 payload);
  Bytes.blit_string payload 0 b header_bytes len;
  Bytes.set b (header_bytes + len) '\n';
  b

(* Split a file's bytes into CRC-valid payloads. Returns the payloads
   of the longest valid prefix and the byte offset where it ends —
   [clean] iff that offset is EOF. *)
let parse_frames data =
  let n = String.length data in
  let rec loop ofs acc =
    if ofs = n then (List.rev acc, ofs, true)
    else if n - ofs < header_bytes + 1 then (List.rev acc, ofs, false)
    else
      let len = read_be32 data ofs in
      if len < 0 || len > max_record_bytes || ofs + header_bytes + len + 1 > n
      then (List.rev acc, ofs, false)
      else
        let payload = String.sub data (ofs + header_bytes) len in
        if
          data.[ofs + header_bytes + len] <> '\n'
          || crc32 payload <> read_be32 data (ofs + 4)
        then (List.rev acc, ofs, false)
        else loop (ofs + header_bytes + len + 1) (payload :: acc)
  in
  loop 0 []

(* ------------------------------------------------------------------ *)
(* Session-id <-> directory-name encoding                              *)
(* ------------------------------------------------------------------ *)

let plain c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_'

let encode_id id =
  let b = Buffer.create (String.length id) in
  String.iter
    (fun c ->
      if plain c then Buffer.add_char b c
      else Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
    id;
  Buffer.contents b

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | _ -> None

let decode_id s =
  let n = String.length s in
  let b = Buffer.create n in
  let rec go i =
    if i = n then Some (Buffer.contents b)
    else if s.[i] = '%' then
      if i + 2 >= n then None
      else
        match (hex_val s.[i + 1], hex_val s.[i + 2]) with
        | Some hi, Some lo ->
            Buffer.add_char b (Char.chr ((hi lsl 4) lor lo));
            go (i + 3)
        | _ -> None
    else if plain s.[i] then begin
      Buffer.add_char b s.[i];
      go (i + 1)
    end
    else None
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Filesystem plumbing                                                 *)
(* ------------------------------------------------------------------ *)

let sessions_root state_dir = Filename.concat state_dir "sessions"

let session_dir ~state_dir id =
  Filename.concat (sessions_root state_dir) (encode_id id)

let manifest_name = "MANIFEST"

let snapshot_name gen = "snapshot." ^ string_of_int gen

let journal_name gen = "journal." ^ string_of_int gen

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Make a rename/creation durable by fsyncing the containing
   directory. Best-effort: some filesystems refuse O_RDONLY fsync on
   directories, and losing it only narrows the durability window. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let write_all fd b ofs len =
  let rec go ofs len =
    if len > 0 then begin
      let n = Unix.write fd b ofs len in
      go (ofs + n) (len - n)
    end
  in
  go ofs len

let read_file_opt path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          Some (really_input_string ic len))

(* tmp + fsync + rename + directory fsync: the file exists fully
   written or not at all. *)
let write_file_atomic ~dir name content =
  let tmp = Filename.concat dir (name ^ ".tmp") in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd (Bytes.unsafe_of_string content) 0 (String.length content);
      Unix.fsync fd);
  Unix.rename tmp (Filename.concat dir name);
  fsync_dir dir

let manifest_magic = "tecore-journal 1"

let write_manifest dir gen =
  write_file_atomic ~dir manifest_name
    (Printf.sprintf "%s\ngen %d\n" manifest_magic gen)

let read_manifest dir =
  match read_file_opt (Filename.concat dir manifest_name) with
  | None -> Error "missing MANIFEST"
  | Some text -> (
      match String.split_on_char '\n' text with
      | magic :: gen_line :: _ when magic = manifest_magic -> (
          match String.split_on_char ' ' gen_line with
          | [ "gen"; n ] -> (
              match int_of_string_opt n with
              | Some gen when gen >= 0 -> Ok gen
              | _ -> Error "corrupt MANIFEST: bad generation")
          | _ -> Error "corrupt MANIFEST: bad generation line")
      | _ -> Error "corrupt MANIFEST: bad magic")

let list_sessions ~state_dir =
  match Sys.readdir (sessions_root state_dir) with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map decode_id
      |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

(* "@prefix p: <iri> ." — same shape Kg.Nquads accepts in UTKG files. *)
let parse_prefix_directive line =
  let parts =
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "" && s <> ".")
  in
  match parts with
  | [ "@prefix"; prefixed; iri ] ->
      let n = String.length prefixed in
      let m = String.length iri in
      if
        n >= 1
        && prefixed.[n - 1] = ':'
        && m >= 2
        && iri.[0] = '<'
        && iri.[m - 1] = '>'
      then Some (String.sub prefixed 0 (n - 1), String.sub iri 1 (m - 2))
      else None
  | _ -> None

let replay_line session ~line payload =
  let payload = Protocol.strip_cr payload in
  let trimmed = String.trim payload in
  if trimmed = "open" then begin
    Tecore.Session.load_graph session (Kg.Graph.create ());
    Ok ()
  end
  else if
    String.length trimmed >= 7 && String.sub trimmed 0 7 = "@prefix"
  then
    match parse_prefix_directive trimmed with
    | Some (prefix, iri) ->
        Kg.Namespace.add (Tecore.Session.namespace session) ~prefix ~iri;
        Ok ()
    | None -> Error "malformed @prefix"
  else
    match Tecore.Script.parse_command ~path:"journal" ~line trimmed with
    | Error e -> Error e.Tecore.Script.message
    | Ok None -> Ok ()
    | Ok (Some { cmd; _ }) -> (
        let ns = Tecore.Session.namespace session in
        match cmd with
        | Tecore.Script.Assert_ p -> (
            match Kg.Nquads.parse_quad ns p with
            | Error msg -> Error msg
            | Ok q ->
                Result.fold ~ok:(fun _ -> Ok ())
                  ~error:(fun e -> Error (Tecore.Session.error_message e))
                  (Tecore.Session.assert_fact session q))
        | Tecore.Script.Retract p -> (
            match Kg.Nquads.parse_quad ns p with
            | Error msg -> Error msg
            | Ok q ->
                Result.fold ~ok:(fun _ -> Ok ())
                  ~error:(fun e -> Error (Tecore.Session.error_message e))
                  (Tecore.Session.retract session q))
        | Tecore.Script.Rule p ->
            Result.map (fun _ -> ()) (Tecore.Session.add_rules session p)
        | Tecore.Script.Unrule name ->
            if Tecore.Session.remove_rule session name then Ok ()
            else Error (Printf.sprintf "no rule named %S" name)
        | Tecore.Script.Load path -> Tecore.Session.load_file session path
        | Tecore.Script.Resolve _ | Tecore.Script.Diff ->
            (* Reads never reach the journal; tolerate them in case a
               duplicated region smuggles one in. *)
            Ok ())

(* ------------------------------------------------------------------ *)
(* Handles                                                             *)
(* ------------------------------------------------------------------ *)

let open_gen ~dir ~id ~fsync ~compact_every ~gen ~since =
  let fd =
    Unix.openfile
      (Filename.concat dir (journal_name gen))
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  {
    id;
    dir;
    fsync;
    compact_every;
    gen;
    fd = Some fd;
    failed = None;
    since_snapshot = since;
    appends = 0;
    unsynced = 0;
    group = None;
  }

(* ------------------------------------------------------------------ *)
(* Cross-session group commit                                          *)
(* ------------------------------------------------------------------ *)

let create_group () =
  { glock = Mutex.create (); members = []; commits = Atomic.make 0 }

let group_commits g = Atomic.get g.commits

let attach t g =
  Mutex.lock g.glock;
  if not (List.memq t g.members) then g.members <- t :: g.members;
  t.group <- Some g;
  Mutex.unlock g.glock

let detach t =
  match t.group with
  | None -> ()
  | Some g ->
      Mutex.lock g.glock;
      g.members <- List.filter (fun m -> m != t) g.members;
      t.group <- None;
      Mutex.unlock g.glock

(* One coalesced flush pass: fsync every group member that still has
   unsynced appends. Sibling failures are swallowed (each handle's own
   appends keep surfacing its sticky error); called with [glock]
   held. *)
let group_flush g =
  List.iter
    (fun m ->
      if m.unsynced > 0 && m.failed = None then
        match m.fd with
        | Some fd -> (
            try
              Obs.phase "fsync" (fun () -> Unix.fsync fd);
              m.unsynced <- 0;
              Obs.count "journal.fsync"
            with Unix.Unix_error _ -> ())
        | None -> ())
    g.members;
  Atomic.incr g.commits;
  Obs.count "journal.group_commit"

let create ~state_dir ~fsync ~compact_every id =
  let dir = session_dir ~state_dir id in
  mkdir_p dir;
  let t = open_gen ~dir ~id ~fsync ~compact_every ~gen:0 ~since:0 in
  fsync_dir dir;
  write_manifest dir 0;
  Obs.count "journal.create";
  t

let fail t msg =
  t.failed <- Some msg;
  Obs.count "journal.io_error";
  raise (Sys_error msg)

let live_fd t =
  (match t.failed with
  | Some msg -> raise (Sys_error msg)
  | None -> ());
  match t.fd with
  | Some fd -> fd
  | None -> raise (Sys_error (Printf.sprintf "journal %s: closed" t.id))

(* Count one completed append against the fsync policy. Handles
   attached to a {!group} pool their [Every n] budget: the threshold
   applies to the pending total across the whole group, and crossing it
   flushes every dirty member in one pass (group commit) — the
   server-wide bound on acked-but-unsynced edits is [n - 1] in total
   rather than per session. *)
let policy_fsync t fd =
  let sync () =
    Obs.phase "fsync" (fun () -> Unix.fsync fd);
    t.unsynced <- 0;
    Obs.count "journal.fsync"
  in
  match t.fsync with
  | Never -> t.unsynced <- t.unsynced + 1
  | Always ->
      t.unsynced <- t.unsynced + 1;
      sync ()
  | Every n -> (
      match t.group with
      | None ->
          t.unsynced <- t.unsynced + 1;
          if t.unsynced >= n then sync ()
      | Some g ->
          Mutex.lock g.glock;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock g.glock)
            (fun () ->
              t.unsynced <- t.unsynced + 1;
              let total =
                List.fold_left (fun acc m -> acc + m.unsynced) 0 g.members
              in
              if total >= n then begin
                (* The appending handle syncs through the failing path
                   so its own IO errors stay sticky; the rest of the
                   group is flushed best-effort. *)
                sync ();
                group_flush g
              end))

let append t payload =
  let fd = live_fd t in
  let b = frame payload in
  t.appends <- t.appends + 1;
  (try
     if Prelude.Deadline.Faults.trip_at "journal_torn" ~index:t.appends then begin
       (* Torn-write window: flush a strict prefix of the frame, then
          stall so a crash test can SIGKILL the process mid-record.
          Harmless when nobody kills us — the rest follows. *)
       let half = max 1 (Bytes.length b / 2) in
       write_all fd b 0 half;
       Unix.sleepf 30.;
       write_all fd b half (Bytes.length b - half)
     end
     else Obs.phase "journal" (fun () -> write_all fd b 0 (Bytes.length b));
     policy_fsync t fd
   with Unix.Unix_error (e, fn, _) ->
     fail t
       (Printf.sprintf "journal %s: %s: %s" t.id fn (Unix.error_message e)));
  t.since_snapshot <- t.since_snapshot + 1;
  Obs.count "journal.append";
  Obs.count ~n:(Bytes.length b) "journal.bytes"

let records_since_snapshot t = t.since_snapshot

let appends t = t.appends

let unlink_quiet path = try Unix.unlink path with Unix.Unix_error _ -> ()

let compact t lines =
  ignore (live_fd t);
  let gen' = t.gen + 1 in
  try
    let body = Buffer.create 4096 in
    List.iter (fun l -> Buffer.add_bytes body (frame l)) lines;
    write_file_atomic ~dir:t.dir (snapshot_name gen') (Buffer.contents body);
    let fd' =
      Unix.openfile
        (Filename.concat t.dir (journal_name gen'))
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_APPEND ]
        0o644
    in
    (try Unix.fsync fd'
     with e ->
       Unix.close fd';
       raise e);
    fsync_dir t.dir;
    (* The flip: until this rename lands, recovery still replays the
       old generation in full. *)
    write_manifest t.dir gen';
    (match t.fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    unlink_quiet (Filename.concat t.dir (snapshot_name t.gen));
    unlink_quiet (Filename.concat t.dir (journal_name t.gen));
    t.fd <- Some fd';
    t.gen <- gen';
    t.since_snapshot <- 0;
    t.unsynced <- 0;
    Obs.count "journal.compact";
    Obs.event "journal.compact"
      [
        ("session", Obs.Events.Str t.id);
        ("gen", Obs.Events.Int gen');
        ("records", Obs.Events.Int (List.length lines));
      ]
  with
  | Unix.Unix_error (e, fn, _) ->
      fail t
        (Printf.sprintf "journal %s: %s: %s" t.id fn (Unix.error_message e))
  | Sys_error msg -> fail t (Printf.sprintf "journal %s: %s" t.id msg)

let maybe_compact t dump =
  if t.compact_every > 0 && t.since_snapshot >= t.compact_every then begin
    compact t (dump ());
    true
  end
  else false

let sync t =
  match (t.failed, t.fd) with
  | None, Some fd -> (
      try
        if t.unsynced > 0 then begin
          Unix.fsync fd;
          t.unsynced <- 0;
          Obs.count "journal.fsync"
        end
      with Unix.Unix_error (e, fn, _) ->
        fail t
          (Printf.sprintf "journal %s: %s: %s" t.id fn (Unix.error_message e)))
  | _ -> ()

let close t =
  (try sync t with Sys_error _ -> ());
  detach t;
  match t.fd with
  | Some fd ->
      t.fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let replay_records session records =
  (* Apply a clean-framed record list; a record that fails to apply
     marks everything from it on as garbage (same contract as a torn
     frame: keep the longest consistent prefix). *)
  let rec go i = function
    | [] -> Ok i
    | r :: rest -> (
        match replay_line session ~line:(i + 1) r with
        | Ok () -> go (i + 1) rest
        | Error msg -> Error (i, msg))
  in
  go 0 records

let scan_max_gen dir =
  (* For re-initialising after unrecoverable damage: never reuse a
     generation number that already has files on disk. *)
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      Array.fold_left
        (fun acc name ->
          match String.rindex_opt name '.' with
          | Some i -> (
              match int_of_string_opt
                      (String.sub name (i + 1) (String.length name - i - 1))
              with
              | Some g -> max acc g
              | None -> acc)
          | None -> acc)
        0 names

let recover ~state_dir ~fsync ~compact_every id =
  let dir = session_dir ~state_dir id in
  let fresh () = Tecore.Session.create () in
  (* Re-initialise after unrecoverable damage: flip the manifest to an
     unused generation with a snapshot of whatever state survived, and
     leave the damaged files in place for inspection. *)
  let reinit session reason =
    let gen = scan_max_gen dir + 1 in
    let body = Buffer.create 4096 in
    List.iter
      (fun l -> Buffer.add_bytes body (frame l))
      (Tecore.Session.dump_state session);
    write_file_atomic ~dir (snapshot_name gen) (Buffer.contents body);
    let t = open_gen ~dir ~id ~fsync ~compact_every ~gen ~since:0 in
    fsync_dir dir;
    write_manifest dir gen;
    { session; journal = t; status = Unrecoverable reason }
  in
  let result =
    match read_manifest dir with
    | Error reason -> reinit (fresh ()) reason
    | Ok gen -> (
        let session = fresh () in
        let snapshot_ok =
          match
            read_file_opt (Filename.concat dir (snapshot_name gen))
          with
          | None ->
              (* Generation 0 starts from the empty session; at any
                 later generation the snapshot is written before the
                 manifest flips, so a missing one is real damage. *)
              if gen = 0 then Ok () else Error "missing snapshot"
          | Some data -> (
              let records, _, clean = parse_frames data in
              if not clean then Error "corrupt snapshot frame"
              else
                match replay_records session records with
                | Ok _ -> Ok ()
                | Error (i, msg) ->
                    Error
                      (Printf.sprintf "snapshot record %d: %s" (i + 1) msg))
        in
        match snapshot_ok with
        | Error reason ->
            (* A half-applied snapshot is not a consistent session;
               restart from empty. *)
            reinit (fresh ()) reason
        | Ok () -> (
            let journal_path = Filename.concat dir (journal_name gen) in
            let data =
              (* The journal file is created before the manifest flips,
                 but tolerate its absence (adversarial deletion) as an
                 empty tail. *)
              Option.value ~default:"" (read_file_opt journal_path)
            in
            let records, clean_end, clean = parse_frames data in
            let applied, bad =
              match replay_records session records with
              | Ok n -> (n, None)
              | Error (i, msg) -> (i, Some msg)
            in
            match (clean, bad) with
            | true, None ->
                let t =
                  open_gen ~dir ~id ~fsync ~compact_every ~gen
                    ~since:applied
                in
                { session; journal = t; status = Full }
            | _ ->
                (* Torn tail, corrupt frame, or a record that refused
                   to apply: keep the consistent prefix and compact it
                   into a clean next generation (which is also the
                   physical truncation). *)
                ignore clean_end;
                let consumed = ref 0 in
                List.iteri
                  (fun i r ->
                    if i < applied then consumed := !consumed + frame_bytes r)
                  records;
                let dropped_bytes = String.length data - !consumed in
                let t =
                  open_gen ~dir ~id ~fsync ~compact_every ~gen
                    ~since:applied
                in
                compact t (Tecore.Session.dump_state session);
                {
                  session;
                  journal = t;
                  status = Partial { dropped_bytes; replayed = applied };
                }))
  in
  (match result.status with
  | Full -> Obs.count "recovery.full"
  | Partial { dropped_bytes; replayed } ->
      Obs.count "recovery.partial";
      Obs.count ~n:dropped_bytes "recovery.dropped_bytes";
      Obs.event ~level:Obs.Events.Warn "recovery.partial"
        [
          ("session", Obs.Events.Str id);
          ("dropped_bytes", Obs.Events.Int dropped_bytes);
          ("replayed", Obs.Events.Int replayed);
        ]
  | Unrecoverable reason ->
      Obs.count "recovery.unrecoverable";
      Obs.event ~level:Obs.Events.Error "recovery.unrecoverable"
        [ ("session", Obs.Events.Str id); ("reason", Obs.Events.Str reason) ]);
  Obs.count "recovery.sessions";
  result
