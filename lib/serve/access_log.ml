(* Structured JSON-lines access log for [tecore serve]: one record per
   traced request, a size-rotated writer shared by all connection
   threads, and a crash-tolerant reader/analyzer. Like the journal, the
   file is append-only and a SIGKILL mid-write can only damage the last
   line; unlike the journal the lines carry no CRC, so "torn" simply
   means the final line does not parse and the reader skips it with a
   typed warning. *)

type record = {
  req : int;
  ts : float; (* Unix epoch seconds at request completion *)
  session : string option;
  lane : int option; (* resolver lane of the session, on multi-lane servers *)
  verb : string;
  outcome : string; (* "ok" or the typed error kind *)
  wall_ms : float;
  phases : (string * float) list; (* canonical order, ms *)
}

(* The phase taxonomy, in reporting order. A record carries only the
   phases that actually occurred (a cache-hit resolve has no ground or
   solve entry), so consumers must treat absence as zero. *)
let phase_names =
  [ "parse"; "queue"; "lock"; "ground"; "solve"; "journal"; "fsync"; "reply" ]

let record_to_json r =
  Obs.Json.Obj
    ([
       ("req", Obs.Json.Num (float_of_int r.req));
       ("ts", Obs.Json.Num r.ts);
     ]
    @ (match r.session with
      | Some s -> [ ("session", Obs.Json.Str s) ]
      | None -> [])
    @ (match r.lane with
      | Some l -> [ ("lane", Obs.Json.Num (float_of_int l)) ]
      | None -> [])
    @ [
        ("verb", Obs.Json.Str r.verb);
        ("outcome", Obs.Json.Str r.outcome);
        ("wall_ms", Obs.Json.Num r.wall_ms);
        ( "phases",
          Obs.Json.Obj
            (List.map (fun (p, ms) -> (p, Obs.Json.Num ms)) r.phases) );
      ])

let record_to_line r = Obs.Json.to_string (record_to_json r)

let record_of_json j =
  let ( let* ) = Result.bind in
  let num name =
    match Obs.Json.member name j with
    | Some (Obs.Json.Num v) -> Ok v
    | _ -> Error (Printf.sprintf "missing numeric field %S" name)
  in
  let str name =
    match Obs.Json.member name j with
    | Some (Obs.Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" name)
  in
  let* req = num "req" in
  let* ts = num "ts" in
  let session =
    match Obs.Json.member "session" j with
    | Some (Obs.Json.Str s) -> Some s
    | _ -> None
  in
  let lane =
    match Obs.Json.member "lane" j with
    | Some (Obs.Json.Num v)
      when v >= 0.0 && Float.of_int (Float.to_int v) = v ->
        Some (Float.to_int v)
    | _ -> None
  in
  let* verb = str "verb" in
  let* outcome = str "outcome" in
  let* wall_ms = num "wall_ms" in
  let* phases =
    match Obs.Json.member "phases" j with
    | Some (Obs.Json.Obj fields) ->
        List.fold_left
          (fun acc (p, v) ->
            let* acc = acc in
            match v with
            | Obs.Json.Num ms when ms >= 0.0 -> Ok ((p, ms) :: acc)
            | Obs.Json.Num _ ->
                Error (Printf.sprintf "negative phase %S" p)
            | _ -> Error (Printf.sprintf "non-numeric phase %S" p))
          (Ok []) fields
        |> Result.map List.rev
    | _ -> Error "missing object field \"phases\""
  in
  if req < 1.0 || Float.of_int (Float.to_int req) <> req then
    Error "field \"req\" is not a positive integer"
  else if wall_ms < 0.0 then Error "negative \"wall_ms\""
  else
    Ok
      {
        req = Float.to_int req;
        ts;
        session;
        lane;
        verb;
        outcome;
        wall_ms;
        phases;
      }

let record_of_line line =
  match Obs.Json.parse line with
  | Error e -> Error e
  | Ok j -> record_of_json j

(* ------------------------------------------------------------------ *)
(* Writer.                                                             *)

type writer = {
  path : string;
  max_bytes : int;
  keep : int;
  wlock : Mutex.t;
  mutable fd : Unix.file_descr;
  mutable bytes : int;
}

let open_fd path =
  Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644

let open_writer ~path ~max_bytes ~keep =
  let fd = open_fd path in
  {
    path;
    max_bytes = max 1024 max_bytes;
    keep = max 1 keep;
    wlock = Mutex.create ();
    fd;
    bytes = (Unix.fstat fd).Unix.st_size;
  }

let rotated_path w k = Printf.sprintf "%s.%d" w.path k

(* FILE -> FILE.1 -> ... -> FILE.keep; the oldest rotated file is
   discarded. Called with the writer lock held. *)
let rotate w =
  Unix.close w.fd;
  (try Unix.unlink (rotated_path w w.keep) with Unix.Unix_error _ -> ());
  for k = w.keep - 1 downto 1 do
    try Unix.rename (rotated_path w k) (rotated_path w (k + 1))
    with Unix.Unix_error _ -> ()
  done;
  (try Unix.rename w.path (rotated_path w 1) with Unix.Unix_error _ -> ());
  w.fd <- open_fd w.path;
  w.bytes <- 0

let write_all fd b pos len =
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd b (pos + !written) (len - !written)
  done

let write w r =
  let b = Bytes.of_string (record_to_line r ^ "\n") in
  let len = Bytes.length b in
  Mutex.lock w.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.wlock)
    (fun () ->
      (* Rotate before the write that would overflow, but never leave
         the live file empty: a record larger than [max_bytes] still
         lands somewhere. *)
      if w.bytes > 0 && w.bytes + len > w.max_bytes then rotate w;
      write_all w.fd b 0 len;
      w.bytes <- w.bytes + len)

let close_writer w =
  Mutex.lock w.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.wlock)
    (fun () -> try Unix.close w.fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Reader / analyzer.                                                  *)

type warning =
  | Torn_tail of { line : int }
  | Bad_record of { line : int; reason : string }

let warning_to_string = function
  | Torn_tail { line } ->
      Printf.sprintf "torn tail: line %d is incomplete and was skipped" line
  | Bad_record { line; reason } ->
      Printf.sprintf "bad record at line %d: %s" line reason

let read_file path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let lines = String.split_on_char '\n' contents in
  (* A well-formed log ends with '\n', so the split yields a trailing
     "" sentinel; its absence already means the tail was torn. *)
  let rec go n acc warns = function
    | [] | [ "" ] -> (List.rev acc, List.rev warns)
    | [ last ] -> (
        match record_of_line last with
        | Ok r -> (List.rev (r :: acc), List.rev warns)
        | Error _ ->
            (* Interrupted final write (SIGKILL mid-append): skip it. *)
            (List.rev acc, List.rev (Torn_tail { line = n } :: warns)))
    | line :: rest -> (
        match record_of_line line with
        | Ok r -> go (n + 1) (r :: acc) warns rest
        | Error reason ->
            go (n + 1) acc (Bad_record { line = n; reason } :: warns) rest)
  in
  go 1 [] [] lines

(* ------------------------------------------------------------------ *)
(* Offline statistics — same [Obs.Histogram] machinery as the server's
   live [serve_request_phase_ms] summaries, so quantiles computed here
   from a complete log are identical to the scraped ones. *)

type stats = {
  total : int;
  wall : Obs.Histogram.t;
  phase_hists : (string * Obs.Histogram.t) list; (* canonical order *)
  slowest : record list; (* slowest first *)
}

let stats ?(top = 10) records =
  let wall = Obs.Histogram.create () in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      Obs.Histogram.add wall r.wall_ms;
      List.iter
        (fun (p, ms) ->
          let h =
            match Hashtbl.find_opt tbl p with
            | Some h -> h
            | None ->
                let h = Obs.Histogram.create () in
                Hashtbl.add tbl p h;
                h
          in
          Obs.Histogram.add h ms)
        r.phases)
    records;
  let phase_hists =
    List.filter_map
      (fun p -> Option.map (fun h -> (p, h)) (Hashtbl.find_opt tbl p))
      phase_names
  in
  let slowest =
    List.stable_sort (fun a b -> Float.compare b.wall_ms a.wall_ms) records
    |> List.filteri (fun i _ -> i < max 0 top)
  in
  { total = List.length records; wall; phase_hists; slowest }
