module Session = Tecore.Session
module Engine = Tecore.Engine
module Deadline = Prelude.Deadline
module Journal = Journal
module Protocol = Protocol
module Access_log = Access_log

type config = {
  engine : Engine.engine;
  jobs : int option;
  queue_cap : int;
  request_timeout_ms : float option;
  max_line_bytes : int;
  allow_shutdown : bool;
  max_sessions : int option;
  state_dir : string option;
  fsync : Journal.fsync_policy;
  compact_every : int;
  idle_ttl_s : float option;
  access_log : string option;
  access_log_max_bytes : int;
  access_log_keep : int;
  trace_every : int;
  lanes : int;
}

let default_config =
  {
    engine = Engine.Auto;
    jobs = None;
    queue_cap = 64;
    request_timeout_ms = None;
    max_line_bytes = 1 lsl 20;
    allow_shutdown = false;
    max_sessions = None;
    state_dir = None;
    fsync = Journal.Always;
    compact_every = 256;
    idle_ttl_s = None;
    access_log = None;
    access_log_max_bytes = 4 * 1024 * 1024;
    access_log_keep = 3;
    trace_every = 0;
    lanes =
      (* TECORE_LANES mirrors TECORE_JOBS: it lets the whole serve test
         matrix re-run against a multi-lane resolver without touching
         each [start] call site. *)
      (match Sys.getenv_opt "TECORE_LANES" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some n when n >= 1 -> n
          | _ -> 1)
      | None -> 1);
  }

type listen = [ `Tcp of int | `Unix of string ]

(* ------------------------------------------------------------------ *)
(* Bounded line reader                                                 *)
(* ------------------------------------------------------------------ *)

(* A hand-rolled reader instead of [in_channel_of_descr]: we need a hard
   cap on line length (an attacker must not make the server buffer an
   unbounded frame) and we need [`Too_long] to consume the rest of the
   oversized line so the connection stays usable afterwards. *)
module Reader = struct
  type t = {
    fd : Unix.file_descr;
    max : int;
    mutable buf : Bytes.t;
    mutable len : int;
    chunk : Bytes.t;
  }

  let create ~max fd =
    { fd; max; buf = Bytes.create 4096; len = 0; chunk = Bytes.create 4096 }

  let refill t =
    match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
    | 0 -> 0
    | n ->
        if t.len + n > Bytes.length t.buf then begin
          let cap = max (2 * Bytes.length t.buf) (t.len + n) in
          let grown = Bytes.create cap in
          Bytes.blit t.buf 0 grown 0 t.len;
          t.buf <- grown
        end;
        Bytes.blit t.chunk 0 t.buf t.len n;
        t.len <- t.len + n;
        n
    | exception Unix.Unix_error _ -> 0
    | exception _ -> 0

  let take t upto =
    let line = Bytes.sub_string t.buf 0 upto in
    let rest = t.len - upto - 1 in
    if rest > 0 then Bytes.blit t.buf (upto + 1) t.buf 0 rest;
    t.len <- max rest 0;
    line

  (* Read one LF-terminated line. [`Line s] (without the LF), [`Too_long]
     when the line exceeded [max] (the remainder has been discarded), or
     [`Eof]. A final unterminated chunk is returned as a line. *)
  let read_line t =
    let rec discard_to_newline () =
      match Bytes.index_opt (Bytes.sub t.buf 0 t.len) '\n' with
      | Some i ->
          ignore (take t i);
          `Too_long
      | None ->
          t.len <- 0;
          if refill t = 0 then `Too_long else discard_to_newline ()
    in
    let rec go scanned =
      let limit = t.len in
      let nl = ref (-1) in
      (try
         for i = scanned to limit - 1 do
           if Bytes.get t.buf i = '\n' then begin
             nl := i;
             raise Exit
           end
         done
       with Exit -> ());
      if !nl >= 0 then `Line (take t !nl)
      else if t.len > t.max then discard_to_newline ()
      else if refill t = 0 then
        if t.len > 0 then begin
          let line = Bytes.sub_string t.buf 0 t.len in
          t.len <- 0;
          `Line line
        end
        else `Eof
      else go limit
    in
    go 0
end

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

let send_line fd s = write_all fd (s ^ "\n")

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type entry = {
  id : string;
  session : Session.t;
  lock : Mutex.t;
  mutable last_used : int;  (** registry clock tick, for LRU eviction *)
  mutable last_wall : float;  (** wall-clock of last use, for idle TTL *)
  mutable evicted : bool;
      (** set when LRU-evicted; connections still holding the entry get
          a typed [evicted] error on their next use *)
  mutable expired : bool;
      (** set when the idle-TTL janitor parked (or discarded) the
          session; connections still holding the entry get a typed
          [expired] error and re-attach with [hello] *)
  mutable journal : Journal.t option;
      (** the session's write-ahead journal when [--state-dir] is set *)
  mutable recovery : string option;
      (** {!Journal.status_name} when the session came back from disk *)
  served : int Atomic.t;
      (** requests attributed to this session, for the per-session
          exposition counters *)
}

type job = {
  entry : entry;
  mode : [ `Fresh | `Incremental ];
  deadline : Deadline.t;
  job_line : int;
  trace : Obs.Phases.ctx option;
      (** the submitting request's phase context, when traced *)
  submitted_ms : float;  (** enqueue timestamp, for the queue-wait phase *)
  mutable reply : (string, Protocol.error) result option;
  jm : Mutex.t;
  jcv : Condition.t;
}

(* A resolver lane: a FIFO sub-queue plus the thread draining it.
   Sessions are affinity-pinned to a lane by a stable hash of their id,
   so one session's resolves always run on one lane — per-session FIFO
   ordering holds by construction, while independent sessions on
   different lanes no longer head-of-line-block each other. All lanes'
   queues are guarded by the server's single [queue_lock]; only the
   condition variable is per-lane, so a submit wakes exactly the lane
   it fed. *)
type lane = {
  lane_index : int;
  lqueue : job Queue.t;
  lcv : Condition.t;
  mutable lrunning : int;  (** jobs executing on this lane (0 or 1) *)
  lserved : int Atomic.t;
      (** resolves completed by this lane, for the per-lane exposition
          counters *)
  mutable lthread : Thread.t option;
}

(* Request outcomes, for the by-outcome counters. *)
let outcomes =
  [|
    "ok"; "parse"; "exec"; "rejected"; "overloaded"; "timed_out"; "evicted";
    "expired"; "storage"; "shutting_down"; "internal";
  |]

let outcome_index = function
  | Ok _ -> 0
  | Error (e : Protocol.error) -> (
      match e.Protocol.kind with
      | Protocol.Parse -> 1
      | Protocol.Exec -> 2
      | Protocol.Rejected -> 3
      | Protocol.Overloaded -> 4
      | Protocol.Timed_out -> 5
      | Protocol.Evicted -> 6
      | Protocol.Expired -> 7
      | Protocol.Storage -> 8
      | Protocol.Shutting_down -> 9
      | Protocol.Internal -> 10)

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  sockaddr : Unix.sockaddr;
  addr_str : string;
  tcp_port : int option;
  sessions : (string, entry) Hashtbl.t;
  registry_lock : Mutex.t;
  mutable registry_clock : int;  (** bumps on every session use (LRU) *)
  evicted_total : int Atomic.t;
  expired_total : int Atomic.t;
  recovered_total : int Atomic.t;
  lanes : lane array;
  queue_lock : Mutex.t;  (** guards every lane's queue and running flag *)
  solve_lock : Mutex.t;
      (** serialises the solve itself across lanes: the shared domain
          pool stays single-tenant, so engine results (and their bytes)
          are independent of the lane count. Uncontended (and skipped)
          on single-lane servers. *)
  journal_group : Journal.group option;
      (** cross-session commit group pooling the [Every n] fsync budget
          (see {!Journal.attach}), when [--state-dir] is set *)
  mutable shed : int;
  counters : int Atomic.t array;  (** indexed like [outcomes] *)
  requests : int Atomic.t;
  start_wall : float;  (** Unix epoch seconds at {!start} *)
  trace_period : int Atomic.t;
      (** request-trace sampling period: 0 off, N = every Nth request *)
  access_writer : Access_log.writer option;
  trace_lock : Mutex.t;
      (** orders histogram updates, the recent ring and log writes, so
          the offline analyzer sees exactly what the live summaries saw *)
  phase_hists : (string, Obs.Histogram.t) Hashtbl.t;
  recent : Access_log.record option array;  (** ring of traced requests *)
  mutable recent_head : int;  (** next write position *)
  mutable recent_len : int;
  stop_requested : bool Atomic.t;
  mutable stopped : bool;
  conns_lock : Mutex.t;
  mutable conns : Unix.file_descr list;
  mutable conn_threads : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable janitor_thread : Thread.t option;
}

let lane_count t = Array.length t.lanes

(* FNV-1a (32-bit): a stable, platform-independent hash of the session
   id. Lane pinning must not depend on [Hashtbl.hash]'s
   version-specific behaviour — a restarted server has to route a
   recovered session to the same lane its journal group saw. Total for
   any byte string, including empty, huge and non-ASCII ids. *)
let fnv1a_32 s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xFFFFFFFF)
    s;
  !h

(* Which lane serves a session id. The [lane_collide:L] fault point
   (TECORE_FAULTS) pins every session to lane [L mod lanes], the test
   hook for forcing hash collisions. *)
let lane_of_session t id =
  let n = lane_count t in
  if Deadline.Faults.active "lane_collide" then
    ((Deadline.Faults.arg "lane_collide" mod n) + n) mod n
  else fnv1a_32 id mod n

let sessions_open t =
  Mutex.lock t.registry_lock;
  let n = Hashtbl.length t.sessions in
  Mutex.unlock t.registry_lock;
  n

let queue_depth t =
  Mutex.lock t.queue_lock;
  let n =
    Array.fold_left (fun acc l -> acc + Queue.length l.lqueue) 0 t.lanes
  in
  Mutex.unlock t.queue_lock;
  n

let busy t =
  Mutex.lock t.queue_lock;
  let b = Array.exists (fun l -> l.lrunning > 0) t.lanes in
  Mutex.unlock t.queue_lock;
  b

let shed_count t = t.shed

let sessions_evicted t = Atomic.get t.evicted_total

let sessions_expired t = Atomic.get t.expired_total

let sessions_recovered t = Atomic.get t.recovered_total

let requests_total t = Atomic.get t.requests

let start_time t = t.start_wall

let trace_period t = Atomic.get t.trace_period

(* Traced requests still in the ring, oldest first. *)
let recent_records t =
  Mutex.lock t.trace_lock;
  let n = t.recent_len in
  let cap = Array.length t.recent in
  let out = ref [] in
  for i = 0 to n - 1 do
    match t.recent.((t.recent_head - 1 - i + (2 * cap)) mod cap) with
    | Some r -> out := r :: !out
    | None -> ()
  done;
  Mutex.unlock t.trace_lock;
  !out

(* Fold one completed traced request into every live view: the
   per-phase histograms behind [serve_request_phase_ms], the [tail]
   ring, and the access log. One lock so their contents never diverge —
   the analyzer ≡ live-summary equivalence the tests pin depends on
   seeing the same record set everywhere. *)
let record_trace t (r : Access_log.record) =
  Mutex.lock t.trace_lock;
  List.iter
    (fun (p, ms) ->
      let h =
        match Hashtbl.find_opt t.phase_hists p with
        | Some h -> h
        | None ->
            let h = Obs.Histogram.create () in
            Hashtbl.add t.phase_hists p h;
            h
      in
      Obs.Histogram.add h ms)
    r.Access_log.phases;
  let cap = Array.length t.recent in
  t.recent.(t.recent_head) <- Some r;
  t.recent_head <- (t.recent_head + 1) mod cap;
  t.recent_len <- min (t.recent_len + 1) cap;
  (match t.access_writer with
  | Some w -> (
      try Access_log.write w r
      with Unix.Unix_error _ | Sys_error _ ->
        (* A failing access log must never take a connection down. *)
        Obs.count "serve.access_log_error")
  | None -> ());
  Mutex.unlock t.trace_lock

let touch t entry =
  Mutex.lock t.registry_lock;
  t.registry_clock <- t.registry_clock + 1;
  entry.last_used <- t.registry_clock;
  entry.last_wall <- Unix.gettimeofday ();
  Mutex.unlock t.registry_lock

let port t = t.tcp_port

let address t = t.addr_str

let count_outcome t result =
  Atomic.incr t.counters.(outcome_index result)

(* ------------------------------------------------------------------ *)
(* Live metrics                                                        *)
(* ------------------------------------------------------------------ *)

let metrics_text t =
  let obs = Obs.Export.open_metrics (Obs.Report.capture ()) in
  let eof = "# EOF\n" in
  let body =
    if
      String.length obs >= String.length eof
      && String.sub obs (String.length obs - String.length eof)
           (String.length eof)
         = eof
    then String.sub obs 0 (String.length obs - String.length eof)
    else obs
  in
  let b = Buffer.create (String.length body + 512) in
  Buffer.add_string b body;
  Buffer.add_string b "# TYPE serve_sessions_open gauge\n";
  Buffer.add_string b
    (Printf.sprintf "serve_sessions_open %d\n" (sessions_open t));
  Buffer.add_string b "# TYPE serve_queue_depth gauge\n";
  Buffer.add_string b
    (Printf.sprintf "serve_queue_depth %d\n" (queue_depth t));
  (* Per-lane pending work (queued + running) and completed resolves,
     so a stuck or hot lane is visible from the exposition. *)
  Mutex.lock t.queue_lock;
  let lane_rows =
    Array.map
      (fun l -> (Queue.length l.lqueue + l.lrunning, Atomic.get l.lserved))
      t.lanes
  in
  Mutex.unlock t.queue_lock;
  Buffer.add_string b "# TYPE serve_lane_depth gauge\n";
  Array.iteri
    (fun i (depth, _) ->
      Buffer.add_string b
        (Printf.sprintf "serve_lane_depth{lane=\"%d\"} %d\n" i depth))
    lane_rows;
  Buffer.add_string b "# TYPE serve_lane_requests_total counter\n";
  Array.iteri
    (fun i (_, served) ->
      Buffer.add_string b
        (Printf.sprintf "serve_lane_requests_total{lane=\"%d\"} %d\n" i
           served))
    lane_rows;
  Buffer.add_string b "# TYPE serve_requests_total counter\n";
  Array.iteri
    (fun i name ->
      Buffer.add_string b
        (Printf.sprintf "serve_requests_total{outcome=\"%s\"} %d\n" name
           (Atomic.get t.counters.(i))))
    outcomes;
  Buffer.add_string b "# TYPE serve_shed_total counter\n";
  Buffer.add_string b (Printf.sprintf "serve_shed_total %d\n" t.shed);
  Buffer.add_string b "# TYPE serve_sessions_evicted_total counter\n";
  Buffer.add_string b
    (Printf.sprintf "serve_sessions_evicted_total %d\n"
       (Atomic.get t.evicted_total));
  Buffer.add_string b "# TYPE serve_sessions_expired_total counter\n";
  Buffer.add_string b
    (Printf.sprintf "serve_sessions_expired_total %d\n"
       (Atomic.get t.expired_total));
  Buffer.add_string b "# TYPE serve_sessions_recovered_total counter\n";
  Buffer.add_string b
    (Printf.sprintf "serve_sessions_recovered_total %d\n"
       (Atomic.get t.recovered_total));
  Buffer.add_string b "# TYPE serve_uptime_seconds gauge\n";
  Buffer.add_string b
    (Printf.sprintf "serve_uptime_seconds %s\n"
       (Obs.Json.number (Unix.gettimeofday () -. t.start_wall)));
  (* Per-phase request-latency summaries, fed by traced requests. The
     quantile values are Json.number-rendered so the offline analyzer's
     floats compare byte-for-byte. *)
  let escape_label s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  Mutex.lock t.trace_lock;
  let phase_rows =
    List.filter_map
      (fun p ->
        Option.map (fun h -> (p, h)) (Hashtbl.find_opt t.phase_hists p))
      Access_log.phase_names
  in
  if phase_rows <> [] then begin
    Buffer.add_string b "# TYPE serve_request_phase_ms summary\n";
    List.iter
      (fun (p, h) ->
        List.iter
          (fun q ->
            Buffer.add_string b
              (Printf.sprintf
                 "serve_request_phase_ms{phase=\"%s\",quantile=\"%s\"} %s\n" p
                 (Obs.Json.number q)
                 (Obs.Json.number (Obs.Histogram.quantile h q))))
          [ 0.5; 0.95 ];
        Buffer.add_string b
          (Printf.sprintf "serve_request_phase_ms_sum{phase=\"%s\"} %s\n" p
             (Obs.Json.number (Obs.Histogram.total h)));
        Buffer.add_string b
          (Printf.sprintf "serve_request_phase_ms_count{phase=\"%s\"} %d\n" p
             (Obs.Histogram.count h)))
      phase_rows
  end;
  Mutex.unlock t.trace_lock;
  Mutex.lock t.registry_lock;
  let session_rows =
    Hashtbl.fold
      (fun id e acc -> (id, Atomic.get e.served) :: acc)
      t.sessions []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Mutex.unlock t.registry_lock;
  if session_rows <> [] then begin
    Buffer.add_string b "# TYPE serve_session_requests_total counter\n";
    List.iter
      (fun (id, n) ->
        Buffer.add_string b
          (Printf.sprintf "serve_session_requests_total{session=\"%s\"} %d\n"
             (escape_label id) n))
      session_rows
  end;
  Buffer.add_string b eof;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)
(* ------------------------------------------------------------------ *)

let json_num n = Obs.Json.Num (float_of_int n)

let exec_error ~line message =
  { Protocol.kind = Protocol.Exec; line; column = 1; message }

let expired_error ~line id =
  {
    Protocol.kind = Protocol.Expired;
    line;
    column = 1;
    message =
      Printf.sprintf
        "session %S expired after idle TTL; send: hello <client-id> to \
         re-attach"
        id;
  }

let storage_error ~line msg =
  {
    Protocol.kind = Protocol.Storage;
    line;
    column = 1;
    message = "journal write failed; session is no longer durable: " ^ msg;
  }

(* Open the durable backing of a fresh registry entry: recover the
   session from its directory when one exists, create a generation-0
   journal otherwise. (No-op triple without [--state-dir].) *)
let open_session t id =
  match t.config.state_dir with
  | None -> (Session.create (), None, None)
  | Some state_dir ->
      let fsync = t.config.fsync in
      let compact_every = t.config.compact_every in
      let grouped j =
        (match t.journal_group with
        | Some g -> Journal.attach j g
        | None -> ());
        j
      in
      if Sys.file_exists (Journal.session_dir ~state_dir id) then begin
        let r = Journal.recover ~state_dir ~fsync ~compact_every id in
        Atomic.incr t.recovered_total;
        Obs.count "serve.sessions_recovered";
        ( r.Journal.session,
          Some (grouped r.Journal.journal),
          Some (Journal.status_name r.Journal.status) )
      end
      else
        ( Session.create (),
          Some (grouped (Journal.create ~state_dir ~fsync ~compact_every id)),
          None )

(* Write-ahead persistence of one accepted edit; called with the entry
   lock held, after the edit applied. An IO failure surfaces as a typed
   [storage] error: the edit stays applied in memory but is no longer
   durable, and the journal stays failed (sticky) so every later edit
   says so too. *)
let persist entry ~line ~raw ok =
  match entry.journal with
  | None -> Ok ok
  | Some j -> (
      try
        Journal.append j raw;
        (try
           ignore
             (Journal.maybe_compact j (fun () ->
                  Session.dump_state entry.session))
         with Sys_error _ ->
           (* The record itself is durable in the old generation; a
              failed compaction only defers truncation. *)
           ());
        Ok ok
      with Sys_error msg -> Error (storage_error ~line msg))

(* [load FILE] is never journaled — the file can change or vanish
   before a replay. Snapshot the loaded state instead, so recovery is
   self-contained. *)
let persist_snapshot entry ~line ok =
  match entry.journal with
  | None -> Ok ok
  | Some j -> (
      try
        Journal.compact j (Session.dump_state entry.session);
        Ok ok
      with Sys_error msg -> Error (storage_error ~line msg))

(* The queue-side half of a resolve: admission control, hand-off to the
   session's resolver lane, and the wait for its reply. Admission is
   global — the pending count spans every lane, so [--queue] bounds the
   server, not each lane. *)
let submit_resolve t ~line ~trace entry mode =
  let deadline = Deadline.of_timeout_ms t.config.request_timeout_ms in
  let job =
    {
      entry;
      mode;
      deadline;
      job_line = line;
      trace;
      submitted_ms = Prelude.Timing.now_ms ();
      reply = None;
      jm = Mutex.create ();
      jcv = Condition.create ();
    }
  in
  let lane = t.lanes.(lane_of_session t entry.id) in
  Mutex.lock t.queue_lock;
  let pending =
    Array.fold_left
      (fun acc l -> acc + Queue.length l.lqueue + l.lrunning)
      0 t.lanes
  in
  if t.stopped || Atomic.get t.stop_requested then begin
    Mutex.unlock t.queue_lock;
    Error
      {
        Protocol.kind = Protocol.Shutting_down;
        line;
        column = 1;
        message = "server is shutting down";
      }
  end
  else if pending > t.config.queue_cap then begin
    t.shed <- t.shed + 1;
    Mutex.unlock t.queue_lock;
    Obs.event ~level:Obs.Events.Warn "serve.shed"
      [ ("pending", Obs.Events.Int pending) ];
    Error
      {
        Protocol.kind = Protocol.Overloaded;
        line;
        column = 1;
        message =
          Printf.sprintf
            "overloaded: %d resolve(s) pending (queue bound %d); retry later"
            pending t.config.queue_cap;
      }
  end
  else begin
    Queue.add job lane.lqueue;
    Obs.gauge "serve.queue_depth"
      (float_of_int
         (Array.fold_left (fun acc l -> acc + Queue.length l.lqueue) 0 t.lanes));
    Condition.signal lane.lcv;
    Mutex.unlock t.queue_lock;
    Mutex.lock job.jm;
    while job.reply = None do
      Condition.wait job.jcv job.jm
    done;
    let reply = Option.get job.reply in
    Mutex.unlock job.jm;
    reply
  end

let resolve_summary session (r : Engine.result) mode =
  let res = r.Engine.resolution in
  let cache =
    match Session.cache_outcome session with
    | Some o -> Engine.outcome_name o
    | None -> "none"
  in
  [
    ( "mode",
      Obs.Json.Str
        (match mode with `Fresh -> "fresh" | `Incremental -> "incremental")
    );
    ("cache", Obs.Json.Str cache);
    ("engine", Obs.Json.Str (Engine.choice_name r.Engine.stats.Engine.engine_used));
    ("kept", json_num res.Tecore.Conflict.kept);
    ("removed", json_num (List.length res.Tecore.Conflict.removed));
    ("derived", json_num (List.length res.Tecore.Conflict.derived));
    ("conflicting", json_num (List.length res.Tecore.Conflict.conflicting));
    ("objective", Obs.Json.Num r.Engine.stats.Engine.objective);
    ("hard_violations", json_num r.Engine.stats.Engine.hard_violations);
    ( "status",
      Obs.Json.Str (Deadline.status_name r.Engine.stats.Engine.status) );
  ]

(* Runs on the resolver thread, session lock held by the caller. *)
let run_resolve config job =
  let entry = job.entry in
  let session = entry.session in
  match
    Session.resolve ~engine:config.engine ?jobs:config.jobs
      ~deadline:job.deadline ~mode:job.mode session
  with
  | Ok r -> Ok (Protocol.ok_line (resolve_summary session r job.mode))
  | Error (Session.Rejected report) ->
      Error
        {
          Protocol.kind = Protocol.Rejected;
          line = job.job_line;
          column = 1;
          message = Format.asprintf "%a" Tecore.Translator.pp_report report;
        }
  | Error e -> Error (exec_error ~line:job.job_line (Session.error_message e))

(* One lane's resolver thread: drain the lane's sub-queue in FIFO
   order. Within the request, everything but the solve itself (queue
   wait, deadline shedding, fault windows, session locking, the reply
   hand-off) overlaps freely with the other lanes; the solve takes
   [solve_lock] so the shared domain pool stays single-tenant. *)
let lane_loop t lane =
  let rec loop () =
    Mutex.lock t.queue_lock;
    while Queue.is_empty lane.lqueue && not (Atomic.get t.stop_requested) do
      Condition.wait lane.lcv t.queue_lock
    done;
    if Queue.is_empty lane.lqueue then begin
      (* Stop requested and nothing left to drain. *)
      Mutex.unlock t.queue_lock;
      ()
    end
    else begin
      let job = Queue.pop lane.lqueue in
      Obs.gauge "serve.queue_depth"
        (float_of_int
           (Array.fold_left
              (fun acc l -> acc + Queue.length l.lqueue)
              0 t.lanes));
      let draining = Atomic.get t.stop_requested in
      lane.lrunning <- 1;
      Mutex.unlock t.queue_lock;
      (match job.trace with
      | Some ctx ->
          Obs.Phases.record ctx "queue"
            (Prelude.Timing.now_ms () -. job.submitted_ms)
      | None -> ());
      let reply =
        if draining then
          Error
            {
              Protocol.kind = Protocol.Shutting_down;
              line = job.job_line;
              column = 1;
              message = "server is shutting down";
            }
        else if Deadline.expired job.deadline then
          Error
            {
              Protocol.kind = Protocol.Timed_out;
              line = job.job_line;
              column = 1;
              message = "request budget expired while queued";
            }
        else begin
          (* Deterministic slow-resolve injection for the overload and
             head-of-line tests: TECORE_FAULTS=slow_resolve:MS stretches
             the busy window. Adding slow_resolve_lane:L confines the
             stall to lane [L mod lanes], so a sibling lane's progress
             past a stalled one is observable (and deterministic) even
             on a single core. *)
          (if Deadline.Faults.active "slow_resolve_lane" then begin
             let n = Array.length t.lanes in
             if
               ((Deadline.Faults.arg "slow_resolve_lane" mod n) + n) mod n
               = lane.lane_index
             then Deadline.Faults.delay "slow_resolve"
           end
           else Deadline.Faults.delay "slow_resolve");
          let lock_t0 = Prelude.Timing.now_ms () in
          Mutex.lock job.entry.lock;
          (match job.trace with
          | Some ctx ->
              Obs.Phases.record ctx "lock"
                (Prelude.Timing.now_ms () -. lock_t0)
          | None -> ());
          Fun.protect
            ~finally:(fun () -> Mutex.unlock job.entry.lock)
            (fun () ->
              let run () =
                try run_resolve t.config job
                with e ->
                  Error
                    {
                      Protocol.kind = Protocol.Internal;
                      line = job.job_line;
                      column = 1;
                      message = "resolve failed: " ^ Printexc.to_string e;
                    }
              in
              let run () =
                (* Single-lane servers skip the solve lock entirely:
                   their execution path (and byte traffic) is exactly
                   the previous single-resolver release's. The wait for
                   a contended solve lock lands in the "lock" phase
                   (entries sum at emission). *)
                if Array.length t.lanes = 1 then run ()
                else begin
                  let sl_t0 = Prelude.Timing.now_ms () in
                  Mutex.lock t.solve_lock;
                  (match job.trace with
                  | Some ctx ->
                      Obs.Phases.record ctx "lock"
                        (Prelude.Timing.now_ms () -. sl_t0)
                  | None -> ());
                  Fun.protect
                    ~finally:(fun () -> Mutex.unlock t.solve_lock)
                    run
                end
              in
              (* The resolver is a different systhread from the
                 connection that owns the context (which is blocked in
                 [Condition.wait] until we reply), so the engine's
                 ground/solve spans need the context installed here. *)
              match job.trace with
              | Some ctx -> Obs.with_phases ctx run
              | None -> run ())
        end
      in
      Mutex.lock job.jm;
      job.reply <- Some reply;
      Condition.signal job.jcv;
      Mutex.unlock job.jm;
      Mutex.lock t.queue_lock;
      lane.lrunning <- 0;
      Mutex.unlock t.queue_lock;
      Atomic.incr lane.lserved;
      loop ()
    end
  in
  loop ()

(* One parsed request, executed. [trace] is the request's phase context
   when it was sampled — its presence also gates the trace-only response
   fields, so untraced servers keep their exact response bytes. *)
let handle_request t conn_state ~line ~trace parsed raw =
  let result =
    match parsed with
    | Error e -> Error e
    | Ok req -> (
        let with_entry k =
          match !conn_state with
          | Some entry when entry.evicted ->
              Error
                {
                  Protocol.kind = Protocol.Evicted;
                  line;
                  column = 1;
                  message =
                    Printf.sprintf
                      "session %S was evicted (server at --max-sessions \
                       capacity); send: hello <client-id> to start over"
                      entry.id;
                }
          | Some entry when entry.expired -> Error (expired_error ~line entry.id)
          | Some entry ->
              touch t entry;
              k entry
          | None ->
              Error
                (exec_error ~line
                   "no session selected (send: hello <client-id>)")
        in
        let locked k =
          with_entry (fun entry ->
              Obs.phase "lock" (fun () -> Mutex.lock entry.lock);
              Fun.protect
                ~finally:(fun () -> Mutex.unlock entry.lock)
                (fun () ->
                  (* Re-check under the lock: the janitor may have parked
                     the session between [with_entry] and here. *)
                  if entry.expired then Error (expired_error ~line entry.id)
                  else k entry))
        in
        let with_graph k =
          locked (fun entry ->
              match Session.graph entry.session with
              | Some g -> k entry g
              | None ->
                  Error
                    (exec_error ~line
                       "no graph loaded (send: load FILE, or: open)"))
        in
        match req with
        | Protocol.Ping -> Ok (Protocol.ok_line [ ("pong", Obs.Json.Bool true) ])
        | Protocol.Quit -> Ok (Protocol.ok_line [ ("bye", Obs.Json.Bool true) ])
        | Protocol.Shutdown ->
            if t.config.allow_shutdown then
              Ok (Protocol.ok_line [ ("stopping", Obs.Json.Bool true) ])
            else Error (exec_error ~line "shutdown is disabled on this server")
        | Protocol.Metrics ->
            Ok (Protocol.ok_line [ ("metrics", Obs.Json.Str (metrics_text t)) ])
        | Protocol.Trace n ->
            Atomic.set t.trace_period n;
            Obs.event "serve.trace" [ ("every", Obs.Events.Int n) ];
            Ok (Protocol.ok_line [ ("trace", json_num n) ])
        | Protocol.Tail k ->
            let records = recent_records t in
            let skip = max 0 (List.length records - k) in
            let records = List.filteri (fun i _ -> i >= skip) records in
            Ok
              (Protocol.ok_line
                 [
                   ( "requests",
                     Obs.Json.Arr (List.map Access_log.record_to_json records)
                   );
                 ])
        | Protocol.Hello id -> (
            Mutex.lock t.registry_lock;
            t.registry_clock <- t.registry_clock + 1;
            let evicted_entries = ref [] in
            let attach =
              match Hashtbl.find_opt t.sessions id with
              | Some e ->
                  e.last_used <- t.registry_clock;
                  e.last_wall <- Unix.gettimeofday ();
                  Ok (e, false)
              | None -> (
                  (* LRU eviction: creating one past [max_sessions] drops
                     the least-recently-used session. The evicted entry
                     is only unlinked here — connections still holding
                     it are told with a typed [evicted] error on their
                     next use, and a resolve already running on it is
                     left to finish. *)
                  (match t.config.max_sessions with
                  | Some cap ->
                      while Hashtbl.length t.sessions >= max cap 1 do
                        let lru =
                          Hashtbl.fold
                            (fun _ e acc ->
                              match acc with
                              | Some best when best.last_used <= e.last_used ->
                                  acc
                              | _ -> Some e)
                            t.sessions None
                        in
                        match lru with
                        | None -> assert false (* loop guard: non-empty *)
                        | Some e ->
                            e.evicted <- true;
                            Hashtbl.remove t.sessions e.id;
                            evicted_entries := e :: !evicted_entries
                      done
                  | None -> ());
                  match open_session t id with
                  | session, journal, recovery ->
                      let e =
                        {
                          id;
                          session;
                          lock = Mutex.create ();
                          last_used = t.registry_clock;
                          last_wall = Unix.gettimeofday ();
                          evicted = false;
                          expired = false;
                          journal;
                          recovery;
                          served = Atomic.make 0;
                        }
                      in
                      Hashtbl.add t.sessions id e;
                      Ok (e, true)
                  | exception Sys_error msg -> Error (storage_error ~line msg)
                  | exception Unix.Unix_error (e, fn, _) ->
                      Error
                        (storage_error ~line
                           (fn ^ ": " ^ Unix.error_message e)))
            in
            let open_now = Hashtbl.length t.sessions in
            Mutex.unlock t.registry_lock;
            (* Park evicted sessions' durable state outside the registry
               lock (their data is already on disk; closing releases the
               fd so a later hello can recover them). *)
            List.iter
              (fun old ->
                Mutex.lock old.lock;
                (match old.journal with
                | Some j -> Journal.close j
                | None -> ());
                old.journal <- None;
                Mutex.unlock old.lock;
                Atomic.incr t.evicted_total;
                Obs.count "serve.sessions_evicted";
                Obs.event "serve.session_evict"
                  [ ("client", Obs.Events.Str old.id) ])
              !evicted_entries;
            match attach with
            | Error e -> Error e
            | Ok (entry, created) ->
                conn_state := Some entry;
                if created then begin
                  Obs.gauge "serve.sessions_open" (float_of_int open_now);
                  Obs.event "serve.session_open"
                    [ ("client", Obs.Events.Str id) ]
                end;
                let fields =
                  [
                    ("session", Obs.Json.Str id);
                    ("created", Obs.Json.Bool created);
                  ]
                in
                let fields =
                  (* Durability fields only when --state-dir is set, so
                     plain servers keep their exact response bytes. *)
                  if t.config.state_dir = None then fields
                  else
                    fields
                    @ [
                        ( "recovery",
                          Obs.Json.Str
                            (Option.value ~default:"none" entry.recovery) );
                      ]
                in
                let fields =
                  (* The start-time echo rides only traced responses,
                     gated like the durability fields above. *)
                  if trace = None then fields
                  else fields @ [ ("started", Obs.Json.Num t.start_wall) ]
                in
                Ok (Protocol.ok_line fields))
        | Protocol.Open_ ->
            locked (fun entry ->
                Session.load_graph entry.session (Kg.Graph.create ());
                persist entry ~line ~raw:(Protocol.strip_cr raw)
                  (Protocol.ok_line
                     [ ("opened", Obs.Json.Bool true); ("facts", json_num 0) ]))
        | Protocol.Stat ->
            locked (fun entry ->
                let session = entry.session in
                let facts =
                  match Session.graph session with
                  | Some g -> Kg.Graph.size g
                  | None -> 0
                in
                let cache = Engine.cache_stats (Session.engine_state session) in
                let fields =
                  [
                    ("session", Obs.Json.Str entry.id);
                    ("facts", json_num facts);
                    ("rules", json_num (List.length (Session.rules session)));
                    ("pending_edits", json_num (Session.pending_edits session));
                    ( "rules_dirty",
                      Obs.Json.Bool (Session.rules_dirty session) );
                    ( "resolved",
                      Obs.Json.Bool (Session.last_result session <> None) );
                    ("cache_entries", json_num cache.Engine.solve_entries);
                    ("cache_hits", json_num cache.Engine.solve_hits);
                    ("cache_misses", json_num cache.Engine.solve_misses);
                  ]
                in
                let fields =
                  (* Durability fields only when --state-dir is set, so
                     plain servers keep their exact response bytes. *)
                  if t.config.state_dir = None then fields
                  else
                    fields
                    @ [
                        ("durable", Obs.Json.Bool (entry.journal <> None));
                        ( "recovery",
                          Obs.Json.Str
                            (Option.value ~default:"none" entry.recovery) );
                        ( "journal_records",
                          json_num
                            (match entry.journal with
                            | Some j -> Journal.records_since_snapshot j
                            | None -> 0) );
                      ]
                in
                let fields =
                  (* Lane pinning is only surfaced on multi-lane
                     servers, so single-lane responses keep their exact
                     previous bytes. *)
                  if Array.length t.lanes <= 1 then fields
                  else
                    fields
                    @ [ ("lane", json_num (lane_of_session t entry.id)) ]
                in
                Ok (Protocol.ok_line fields))
        | Protocol.Result_ ->
            locked (fun entry ->
                let session = entry.session in
                match Session.last_result session with
                | None -> Error (exec_error ~line "no resolution yet")
                | Some r ->
                    let resolution_json =
                      let s =
                        Tecore.Json_out.of_resolution
                          ~namespace:(Session.namespace session)
                          r.Engine.resolution
                      in
                      match Obs.Json.parse s with
                      | Ok j -> j
                      | Error _ -> Obs.Json.Str s
                    in
                    Ok
                      (Protocol.ok_line
                         [
                           ( "engine",
                             Obs.Json.Str
                               (Engine.choice_name
                                  r.Engine.stats.Engine.engine_used) );
                           ( "objective",
                             Obs.Json.Num r.Engine.stats.Engine.objective );
                           ( "status",
                             Obs.Json.Str
                               (Deadline.status_name
                                  r.Engine.stats.Engine.status) );
                           ( "hard_violations",
                             json_num r.Engine.stats.Engine.hard_violations );
                           ("resolution", resolution_json);
                         ]))
        | Protocol.Cmd (Tecore.Script.Resolve mode) ->
            with_entry (fun entry -> submit_resolve t ~line ~trace entry mode)
        | Protocol.Cmd (Tecore.Script.Load path) ->
            locked (fun entry ->
                match Session.load entry.session path with
                | Ok () ->
                    let facts =
                      match Session.graph entry.session with
                      | Some g -> Kg.Graph.size g
                      | None -> 0
                    in
                    persist_snapshot entry ~line
                      (Protocol.ok_line
                         [
                           ("loaded", Obs.Json.Str path);
                           ("facts", json_num facts);
                         ])
                | Error e ->
                    Error (exec_error ~line (Session.error_message e)))
        | Protocol.Cmd (Tecore.Script.Assert_ payload) ->
            with_graph (fun entry _g ->
                match
                  Kg.Nquads.parse_quad (Session.namespace entry.session) payload
                with
                | Error msg -> Error (exec_error ~line msg)
                | Ok q -> (
                    match Session.assert_fact entry.session q with
                    | Ok _ ->
                        persist entry ~line ~raw:(Protocol.strip_cr raw)
                          (Protocol.ok_line
                             [ ("asserted", Obs.Json.Str (Kg.Quad.to_string q)) ])
                    | Error e ->
                        Error (exec_error ~line (Session.error_message e))))
        | Protocol.Cmd (Tecore.Script.Retract payload) ->
            with_graph (fun entry _g ->
                match
                  Kg.Nquads.parse_quad (Session.namespace entry.session) payload
                with
                | Error msg -> Error (exec_error ~line msg)
                | Ok q -> (
                    match Session.retract entry.session q with
                    | Ok _ ->
                        persist entry ~line ~raw:(Protocol.strip_cr raw)
                          (Protocol.ok_line
                             [ ("retracted", Obs.Json.Str (Kg.Quad.to_string q)) ])
                    | Error e ->
                        Error (exec_error ~line (Session.error_message e))))
        | Protocol.Cmd (Tecore.Script.Rule payload) ->
            locked (fun entry ->
                match Session.add_rules entry.session payload with
                | Ok rules ->
                    persist entry ~line ~raw:(Protocol.strip_cr raw)
                      (Protocol.ok_line
                         [
                           ( "added",
                             Obs.Json.Arr
                               (List.map
                                  (fun (r : Logic.Rule.t) ->
                                    Obs.Json.Str r.Logic.Rule.name)
                                  rules) );
                         ])
                | Error msg -> Error (exec_error ~line msg))
        | Protocol.Cmd (Tecore.Script.Unrule name) ->
            locked (fun entry ->
                if Session.remove_rule entry.session name then
                  persist entry ~line ~raw:(Protocol.strip_cr raw)
                    (Protocol.ok_line [ ("removed", Obs.Json.Str name) ])
                else
                  Error
                    (exec_error ~line (Printf.sprintf "no rule named %S" name)))
        | Protocol.Cmd Tecore.Script.Diff ->
            locked (fun entry ->
                let session = entry.session in
                let text =
                  match (Session.graph session, Session.last_result session) with
                  | Some g, Some r ->
                      Format.asprintf "%a" Tecore.Diff.pp
                        (Tecore.Diff.diff g
                           r.Engine.resolution.Tecore.Conflict.consistent)
                  | _ -> "no resolution yet"
                in
                Ok (Protocol.ok_line [ ("diff", Obs.Json.Str text) ])))
  in
  count_outcome t result;
  result

(* ------------------------------------------------------------------ *)
(* Connection and accept loops                                         *)
(* ------------------------------------------------------------------ *)

let remove_conn t fd =
  Mutex.lock t.conns_lock;
  t.conns <- List.filter (fun c -> c != fd) t.conns;
  Mutex.unlock t.conns_lock;
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Span names captured into a traced request's phase context: the
   engine's grounding/solving spans plus the serve-side lock/journal
   brackets. "encode" folds into the solve phase at emission; spans
   outside this list (resolve, translate, interpret, closure, ...) are
   nested inside or around the captured ones and would double-count. *)
let span_phases = [ "ground"; "encode"; "solve"; "lock"; "journal"; "fsync" ]

(* Aggregate a context's raw entries into the canonical taxonomy:
   duplicates sum (two journal appends in one request), "encode" counts
   as solve, and phases that never occurred stay absent. *)
let canonical_phases ctx =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (n, ms) ->
      let n = if n = "encode" then "solve" else n in
      Hashtbl.replace tbl n
        (ms +. Option.value ~default:0.0 (Hashtbl.find_opt tbl n)))
    (Obs.Phases.entries ctx);
  List.filter_map
    (fun p -> Option.map (fun ms -> (p, ms)) (Hashtbl.find_opt tbl p))
    Access_log.phase_names

let emit_trace t ~req ~session ~parsed ~result ~wall ctx =
  let verb =
    match parsed with
    | Ok r -> Protocol.request_verb r
    | Error _ -> "invalid"
  in
  let lane =
    (* Like the stat field: lane ids ride traced records only on
       multi-lane servers, so single-lane logs keep their exact
       previous schema. *)
    match session with
    | Some id when Array.length t.lanes > 1 -> Some (lane_of_session t id)
    | _ -> None
  in
  record_trace t
    {
      Access_log.req;
      ts = Unix.gettimeofday ();
      session;
      lane;
      verb;
      outcome = outcomes.(outcome_index result);
      wall_ms = wall;
      phases = canonical_phases ctx;
    }

let connection_loop t fd =
  let reader = Reader.create ~max:t.config.max_line_bytes fd in
  let conn_state = ref None in
  let line = ref 0 in
  let rec loop () =
    match Reader.read_line reader with
    | `Eof -> ()
    | `Too_long ->
        incr line;
        Atomic.incr t.requests;
        let e =
          {
            Protocol.kind = Protocol.Parse;
            line = !line;
            column = 1;
            message =
              Printf.sprintf "request exceeds %d bytes"
                t.config.max_line_bytes;
          }
        in
        count_outcome t (Error e);
        send_line fd (Protocol.err_line e);
        loop ()
    | `Line raw -> (
        incr line;
        (* Request ids are unique and monotone across all connections:
           the fetch-and-add is the same counter behind
           [serve_requests_total]. *)
        let req = 1 + Atomic.fetch_and_add t.requests 1 in
        Obs.count "serve.requests";
        let period = Atomic.get t.trace_period in
        let trace =
          if period > 0 && (period = 1 || req mod period = 0) then
            Some (Obs.Phases.create ~only:span_phases ())
          else None
        in
        let t_start =
          match trace with Some _ -> Prelude.Timing.now_ms () | None -> 0.0
        in
        let parsed =
          match trace with
          | None -> Protocol.parse_request ~line:!line raw
          | Some ctx ->
              let t0 = Prelude.Timing.now_ms () in
              let p = Protocol.parse_request ~line:!line raw in
              Obs.Phases.record ctx "parse" (Prelude.Timing.now_ms () -. t0);
              p
        in
        let run () =
          (* Nothing a request does may escape the loop: any unexpected
             exception is contained as a typed internal error and the
             connection keeps serving. *)
          try handle_request t conn_state ~line:!line ~trace parsed raw
          with e ->
            let err =
              {
                Protocol.kind = Protocol.Internal;
                line = !line;
                column = 1;
                message = "internal error: " ^ Printexc.to_string e;
              }
            in
            count_outcome t (Error err);
            Error err
        in
        let result =
          match trace with
          | None -> run ()
          | Some ctx -> Obs.with_phases ctx run
        in
        (match !conn_state with
        | Some entry -> Atomic.incr entry.served
        | None -> ());
        let response =
          match result with Ok s -> s | Error e -> Protocol.err_line e
        in
        let response =
          match trace with
          | Some _ -> Protocol.with_request_id ~req response
          | None -> response
        in
        (match trace with
        | None -> send_line fd response
        | Some ctx ->
            let t0 = Prelude.Timing.now_ms () in
            send_line fd response;
            Obs.Phases.record ctx "reply" (Prelude.Timing.now_ms () -. t0);
            let wall = Prelude.Timing.now_ms () -. t_start in
            let session =
              match !conn_state with
              | Some entry -> Some entry.id
              | None -> None
            in
            emit_trace t ~req ~session ~parsed ~result ~wall ctx);
        match parsed with
        | Ok Protocol.Quit -> ()
        | Ok Protocol.Shutdown when t.config.allow_shutdown ->
            Atomic.set t.stop_requested true;
            Mutex.lock t.queue_lock;
            Array.iter (fun l -> Condition.broadcast l.lcv) t.lanes;
            Mutex.unlock t.queue_lock
        | _ -> loop ())
  in
  (try loop () with _ -> ());
  remove_conn t fd

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stop_requested then ()
    else begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.listen_fd with
          | fd, _ ->
              Mutex.lock t.conns_lock;
              t.conns <- fd :: t.conns;
              let th = Thread.create (fun () -> connection_loop t fd) () in
              t.conn_threads <- th :: t.conn_threads;
              Mutex.unlock t.conns_lock
          | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Idle-session TTL                                                    *)
(* ------------------------------------------------------------------ *)

(* Expire sessions idle past the TTL. With a state dir this parks them:
   the journal is closed (all acked edits are already on disk) and a
   later [hello] transparently recovers the session; without one the
   in-memory state is discarded. Connections still attached get a typed
   [expired] error on their next request. *)
let janitor_loop t ttl =
  let period = Float.max 0.02 (Float.min (ttl /. 4.) 0.5) in
  while not (Atomic.get t.stop_requested) do
    Thread.delay period;
    let now = Unix.gettimeofday () in
    Mutex.lock t.registry_lock;
    let stale =
      Hashtbl.fold
        (fun _ e acc -> if now -. e.last_wall > ttl then e :: acc else acc)
        t.sessions []
    in
    List.iter
      (fun e ->
        e.expired <- true;
        Hashtbl.remove t.sessions e.id)
      stale;
    Mutex.unlock t.registry_lock;
    List.iter
      (fun e ->
        (* Take the entry lock so an in-flight edit finishes (and its
           journal append lands) before the fd goes away. *)
        Mutex.lock e.lock;
        (match e.journal with Some j -> Journal.close j | None -> ());
        e.journal <- None;
        Mutex.unlock e.lock;
        Atomic.incr t.expired_total;
        Obs.count "serve.sessions_expired";
        Obs.event "serve.session_expire"
          [
            ("client", Obs.Events.Str e.id);
            ("parked", Obs.Events.Bool (t.config.state_dir <> None));
          ])
      stale
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start ?(config = default_config) (listen : listen) =
  let domain, sockaddr =
    match listen with
    | `Tcp port ->
        (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
    | `Unix path ->
        (try if Sys.file_exists path then Sys.remove path with Sys_error _ -> ());
        (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd sockaddr;
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let sockaddr = Unix.getsockname fd in
  let tcp_port, addr_str =
    match sockaddr with
    | Unix.ADDR_INET (_, p) -> (Some p, Printf.sprintf "127.0.0.1:%d" p)
    | Unix.ADDR_UNIX path -> (None, path)
  in
  let access_writer =
    match config.access_log with
    | None -> None
    | Some path -> (
        try
          Some
            (Access_log.open_writer ~path
               ~max_bytes:config.access_log_max_bytes
               ~keep:config.access_log_keep)
        with e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e)
  in
  (* An access log without an explicit sampling period traces every
     request — an empty log from `--access-log` would be a trap. *)
  let trace_every =
    if config.trace_every = 0 && access_writer <> None then 1
    else config.trace_every
  in
  let t =
    {
      config;
      listen_fd = fd;
      sockaddr;
      addr_str;
      tcp_port;
      sessions = Hashtbl.create 64;
      registry_lock = Mutex.create ();
      registry_clock = 0;
      evicted_total = Atomic.make 0;
      expired_total = Atomic.make 0;
      recovered_total = Atomic.make 0;
      lanes =
        Array.init (max 1 config.lanes) (fun i ->
            {
              lane_index = i;
              lqueue = Queue.create ();
              lcv = Condition.create ();
              lrunning = 0;
              lserved = Atomic.make 0;
              lthread = None;
            });
      queue_lock = Mutex.create ();
      solve_lock = Mutex.create ();
      journal_group =
        (match config.state_dir with
        | None -> None
        | Some _ -> Some (Journal.create_group ()));
      shed = 0;
      counters = Array.map (fun _ -> Atomic.make 0) outcomes;
      requests = Atomic.make 0;
      start_wall = Unix.gettimeofday ();
      trace_period = Atomic.make (max 0 trace_every);
      access_writer;
      trace_lock = Mutex.create ();
      phase_hists = Hashtbl.create 8;
      recent = Array.make 64 None;
      recent_head = 0;
      recent_len = 0;
      stop_requested = Atomic.make false;
      stopped = false;
      conns_lock = Mutex.create ();
      conns = [];
      conn_threads = [];
      accept_thread = None;
      janitor_thread = None;
    }
  in
  (* Startup recovery: rebuild the registry from every session directory
     under the state dir before accepting connections. A session whose
     recovery fails environmentally is skipped (logged), never fatal. *)
  (match config.state_dir with
  | None -> ()
  | Some state_dir ->
      List.iter
        (fun id ->
          t.registry_clock <- t.registry_clock + 1;
          match
            Journal.recover ~state_dir ~fsync:config.fsync
              ~compact_every:config.compact_every id
          with
          | r ->
              Atomic.incr t.recovered_total;
              Obs.count "serve.sessions_recovered";
              (match t.journal_group with
              | Some g -> Journal.attach r.Journal.journal g
              | None -> ());
              Hashtbl.replace t.sessions id
                {
                  id;
                  session = r.Journal.session;
                  lock = Mutex.create ();
                  last_used = t.registry_clock;
                  last_wall = Unix.gettimeofday ();
                  evicted = false;
                  expired = false;
                  journal = Some r.Journal.journal;
                  recovery = Some (Journal.status_name r.Journal.status);
                  served = Atomic.make 0;
                }
          | exception e ->
              Obs.event ~level:Obs.Events.Error "recovery.failed"
                [
                  ("session", Obs.Events.Str id);
                  ("error", Obs.Events.Str (Printexc.to_string e));
                ])
        (Journal.list_sessions ~state_dir));
  Obs.event "serve.listening" [ ("address", Obs.Events.Str addr_str) ];
  Array.iter
    (fun lane ->
      lane.lthread <- Some (Thread.create (fun () -> lane_loop t lane) ()))
    t.lanes;
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  (match config.idle_ttl_s with
  | Some ttl when ttl > 0. ->
      t.janitor_thread <- Some (Thread.create (fun () -> janitor_loop t ttl) ())
  | _ -> ());
  t

let connect t =
  let domain =
    match t.sockaddr with
    | Unix.ADDR_INET _ -> Unix.PF_INET
    | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd t.sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let request_stop t = Atomic.set t.stop_requested true

let stop t =
  Atomic.set t.stop_requested true;
  Mutex.lock t.queue_lock;
  let already = t.stopped in
  t.stopped <- true;
  Array.iter (fun l -> Condition.broadcast l.lcv) t.lanes;
  Mutex.unlock t.queue_lock;
  if not already then begin
    (* Wake blocked readers: a shutdown makes every connection thread's
       next read return EOF. *)
    Mutex.lock t.conns_lock;
    let conns = t.conns in
    Mutex.unlock t.conns_lock;
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    Array.iter
      (fun l ->
        match l.lthread with Some th -> Thread.join th | None -> ())
      t.lanes;
    (match t.janitor_thread with Some th -> Thread.join th | None -> ());
    (* Every lane has exited; answer whatever is still queued on any of
       them. *)
    Mutex.lock t.queue_lock;
    Array.iter
      (fun l ->
        Queue.iter
          (fun job ->
            Mutex.lock job.jm;
            job.reply <-
              Some
                (Error
                   {
                     Protocol.kind = Protocol.Shutting_down;
                     line = job.job_line;
                     column = 1;
                     message = "server is shutting down";
                   });
            Condition.signal job.jcv;
            Mutex.unlock job.jm)
          l.lqueue;
        Queue.clear l.lqueue)
      t.lanes;
    Mutex.unlock t.queue_lock;
    let rec drain () =
      Mutex.lock t.conns_lock;
      let ths = t.conn_threads in
      t.conn_threads <- [];
      Mutex.unlock t.conns_lock;
      match ths with
      | [] -> ()
      | ths ->
          List.iter Thread.join ths;
          drain ()
    in
    drain ();
    (* Every connection thread has exited: no append can be in flight.
       Flush and release the journals for a clean next start. *)
    Mutex.lock t.registry_lock;
    let entries = Hashtbl.fold (fun _ e acc -> e :: acc) t.sessions [] in
    Mutex.unlock t.registry_lock;
    List.iter
      (fun e ->
        match e.journal with
        | Some j ->
            Journal.close j;
            e.journal <- None
        | None -> ())
      entries;
    (match t.access_writer with
    | Some w -> Access_log.close_writer w
    | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    match t.sockaddr with
    | Unix.ADDR_UNIX path -> (
        try if Sys.file_exists path then Sys.remove path with Sys_error _ -> ())
    | _ -> ()
  end

let wait t =
  while not (Atomic.get t.stop_requested) do
    Thread.delay 0.1
  done;
  stop t

(* ------------------------------------------------------------------ *)
(* Scripted loopback driver                                            *)
(* ------------------------------------------------------------------ *)

module Driver = struct
  type client = { fd : Unix.file_descr; reader : Reader.t }

  type dcmd =
    | Connect of string
    | Send of string * string
    | Post of string * string
    | Recv of string
    | Await_busy
    | Await_idle
    | Close of string

  let parse_line ~path ~line raw =
    let raw = Protocol.strip_cr raw in
    let keyword, payload, col_kw, col_arg = Protocol.split_keyword raw in
    let err column message =
      Error { Tecore.Script.path; line; column; message }
    in
    let name_and_rest what k =
      let name, rest, _, _ = Protocol.split_keyword payload in
      if name = "" then err col_arg (what ^ ": missing client name")
      else k name rest
    in
    if keyword = "" || keyword.[0] = '#' then Ok None
    else
      match keyword with
      | "connect" ->
          if payload = "" then err col_arg "connect: missing client name"
          else Ok (Some (Connect payload))
      | "send" ->
          name_and_rest "send" (fun name rest ->
              if rest = "" then err col_arg "send: missing request"
              else Ok (Some (Send (name, rest))))
      | "post" ->
          name_and_rest "post" (fun name rest ->
              if rest = "" then err col_arg "post: missing request"
              else Ok (Some (Post (name, rest))))
      | "recv" ->
          name_and_rest "recv" (fun name rest ->
              if rest = "" then Ok (Some (Recv name))
              else err col_arg "recv takes only a client name")
      | "close" ->
          name_and_rest "close" (fun name rest ->
              if rest = "" then Ok (Some (Close name))
              else err col_arg "close takes only a client name")
      | "await-busy" ->
          if payload = "" then Ok (Some Await_busy)
          else err col_arg "await-busy takes no argument"
      | "await-idle" ->
          if payload = "" then Ok (Some Await_idle)
          else err col_arg "await-idle takes no argument"
      | other -> err col_kw (Printf.sprintf "unknown driver command %S" other)

  let run ~server fmt ~path text =
    let exception Halt of Tecore.Script.error in
    let clients : (string, client) Hashtbl.t = Hashtbl.create 8 in
    let fail ~line column message =
      raise (Halt { Tecore.Script.path; line; column; message })
    in
    let client ~line name =
      match Hashtbl.find_opt clients name with
      | Some c -> c
      | None ->
          fail ~line 1 (Printf.sprintf "no connected client named %S" name)
    in
    let out fmt_str = Format.fprintf fmt fmt_str in
    let await ~line what cond =
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec go () =
        if cond () then ()
        else if Unix.gettimeofday () > deadline then
          fail ~line 1 (what ^ ": timed out after 10 s")
        else begin
          Thread.delay 0.002;
          go ()
        end
      in
      go ()
    in
    let recv ~line name c =
      match Reader.read_line c.reader with
      | `Line resp -> out "%s< %s@." name resp
      | `Too_long -> fail ~line 1 (name ^ ": oversized response")
      | `Eof -> out "%s< (connection closed)@." name
    in
    let exec ~line cmd =
      match cmd with
      | Connect name ->
          if Hashtbl.mem clients name then
            fail ~line 1 (Printf.sprintf "client %S already connected" name);
          let fd = connect server in
          Hashtbl.replace clients name
            { fd; reader = Reader.create ~max:(1 lsl 22) fd };
          out "%s connected@." name
      | Send (name, req) ->
          let c = client ~line name in
          out "%s> %s@." name req;
          send_line c.fd req;
          recv ~line name c
      | Post (name, req) ->
          let c = client ~line name in
          out "%s> %s@." name req;
          send_line c.fd req
      | Recv name -> recv ~line name (client ~line name)
      | Await_busy -> await ~line "await-busy" (fun () -> busy server)
      | Await_idle ->
          await ~line "await-idle" (fun () ->
              (not (busy server)) && queue_depth server = 0)
      | Close name ->
          let c = client ~line name in
          (try Unix.close c.fd with Unix.Unix_error _ -> ());
          Hashtbl.remove clients name;
          out "%s closed@." name
    in
    let lines = String.split_on_char '\n' text in
    let result =
      try
        List.iteri
          (fun i raw ->
            let line = i + 1 in
            match parse_line ~path ~line raw with
            | Ok None -> ()
            | Ok (Some cmd) -> exec ~line cmd
            | Error e -> raise (Halt e))
          lines;
        Ok ()
      with Halt e -> Error e
    in
    Hashtbl.iter
      (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      clients;
    result
end
